/**
 * @file
 * NvmSystem: assembles a complete simulated machine — event queue(s),
 * functional memory, memory controller(s) (with BMOs / Janus), and N
 * timing cores — from a single SystemConfig mirroring the paper's
 * Table 3.
 *
 * The machine can be partitioned into `shards` independent memory
 * channels: each shard owns its own event queue, memory controller
 * (BMO pipeline, IRB, NVM device, resilience state), tracer and
 * metrics sampler, with a ShardRouter mapping line addresses to their
 * home shard and a conservative-lookahead ShardScheduler advancing
 * the per-shard queues in parallel (see harness/sharding.hh and
 * DESIGN.md "Sharded simulation core"). With shards == 1 (the
 * default) the assembly and the simulation are byte-identical to the
 * pre-sharding single-queue machine.
 */

#ifndef JANUS_HARNESS_SYSTEM_HH
#define JANUS_HARNESS_SYSTEM_HH

#include <memory>
#include <vector>

#include "cpu/timing_core.hh"
#include "harness/sharding.hh"
#include "ir/ir.hh"
#include "mem/sparse_memory.hh"
#include "memctrl/memory_controller.hh"
#include "sim/critpath.hh"
#include "sim/eventq.hh"
#include "sim/metrics.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace janus
{

/** Whole-system configuration (Table 3 defaults). */
struct SystemConfig
{
    unsigned cores = 1;
    WritePathMode mode = WritePathMode::Janus;
    BmoConfig bmo;
    NvmConfig nvm;
    CoreConfig core;
    /** Per-core Janus queue/buffer sizes (scaled by cores). */
    JanusHwConfig janusHwPerCore;
    /** BMO units per core (Table 3: 4, shared). */
    unsigned bmoUnitsPerCore = 4;
    /** Figure 14: multiply units and Janus buffers by this factor. */
    unsigned resourceScale = 1;
    /** Figure 14 "unlimited" point. */
    bool unlimitedResources = false;
    /** Online resilience layer (inert unless enabled). */
    ResilienceConfig resilience;
    /** Base/extent of the persistent heap handed to workloads. */
    Addr heapBase = 1 * 1024 * 1024;
    Addr heapBytes = Addr(2) * 1024 * 1024 * 1024;
    /** Record a persist-path trace for this system (see sim/trace.hh;
     *  benches turn this on when JANUS_TRACE is set). */
    bool trace = false;
    /** Trace ring capacity in events. */
    std::size_t traceCapacity = 1 << 16;
    /** Critical-path persist profiling (pure observer; see
     *  sim/critpath.hh). */
    bool profilePersist = true;
    /** Windowed time-series sampling (see sim/metrics.hh; benches
     *  turn this on when JANUS_METRICS is set). */
    bool metrics = false;
    /** Metrics window width in ticks. */
    Tick metricsWindowTicks = 10 * ticks::us;
    /** Controller-side group commit: each channel parks up to K
     *  pending persists and retires them in one batched ordering
     *  round (see MemCtrlConfig::groupCommitK). 0 or 1 = off, the
     *  bit-identical classic path. */
    unsigned groupCommitK = 0;
    /** Deadline for a non-full group-commit batch. */
    Tick groupCommitTimeoutTicks = 2 * ticks::us;
    /** Adaptive group commit: close a batch early when device queue
     *  occupancy crosses the depth below (see MemCtrlConfig).
     *  Off by default — tick-identical when disabled. */
    bool gcAdaptive = false;
    std::uint64_t gcAdaptiveQueueDepth = 16;
    /** Controller-side overload robustness: per-tenant shaping,
     *  bounded admission, deadlines, saturation watchdog (see
     *  memctrl/qos.hh). Inert unless qos.enabled. */
    QosConfig qos;

    // --- sharded multi-channel scale-out --------------------------
    /** Memory channels (shards); 1 = the classic serial machine. */
    unsigned shards = 1;
    /** Worker threads for the shard scheduler. 0 = auto: one per
     *  shard, budgeted against the hardware concurrency divided by
     *  the experiment runner's own worker count (results never
     *  depend on this — thread count only changes wall time). */
    unsigned shardThreads = 0;
    /** Address -> home-shard map (line-interleaved by default). */
    ShardRouterPolicy shardPolicy = ShardRouterPolicy::LineInterleave;
    /** One-way cross-shard message latency (persist forward / ack). */
    Tick crossShardHopTicks = 40 * ticks::ns;
    /** Flat completion latency of a read miss to a remote shard. */
    Tick crossShardReadTicks = 60 * ticks::ns;
    /** Conservative-lookahead window. 0 = auto: the hop latency for
     *  LineInterleave (fidelity first — traffic is mostly remote),
     *  10 us for RegionAffine (traffic is shard-local, so few
     *  messages cross rounds and a wide window minimizes barriers).
     *  Any value is sound (delivery at max(due, horizon) can never
     *  reach into a shard's past); larger values only quantize
     *  cross-shard latency more coarsely. */
    Tick shardWindowTicks = 0;
};

/** A fully assembled simulated NVM machine. */
class NvmSystem
{
  public:
    NvmSystem(const SystemConfig &config, const Module &module);
    ~NvmSystem();

    /** Shard 0's event queue (the only queue when shards == 1). */
    EventQueue &eventq() { return domains_[0]->eventq; }
    SparseMemory &mem() { return mem_; }
    /** Shard 0's controller (the only one when shards == 1). */
    MemoryController &mc() { return *domains_[0]->mc; }
    TimingCore &core(unsigned i) { return *cores_.at(i); }
    unsigned numCores() const
    {
        return static_cast<unsigned>(cores_.size());
    }
    RegionAllocator &allocator() { return alloc_; }
    const SystemConfig &config() const { return config_; }

    // --- sharding ------------------------------------------------
    unsigned numShards() const
    {
        return static_cast<unsigned>(domains_.size());
    }
    const ShardRouter &router() const { return router_; }
    MemoryController &mc(unsigned shard)
    {
        return *domains_.at(shard)->mc;
    }
    EventQueue &eventq(unsigned shard)
    {
        return domains_.at(shard)->eventq;
    }
    /** Shard a core lives on (core i -> shard i % shards). */
    unsigned
    shardOfCore(unsigned core) const
    {
        return core % numShards();
    }
    /**
     * The heap allocator a core's workload should draw from: under
     * the RegionAffine policy, the stripe of the core's shard (so
     * its traffic stays shard-local); otherwise the global heap.
     */
    RegionAllocator &allocatorFor(unsigned core);
    /** Events executed across every shard queue. */
    std::uint64_t eventsExecuted() const;
    /** Synchronization rounds of the last run() (0 when serial). */
    std::uint64_t schedulerRounds() const { return lastRounds_; }
    /** Cross-shard messages delivered during the last run(). */
    std::uint64_t crossShardMessages() const { return lastMessages_; }

    /**
     * Run one transaction source per core to exhaustion.
     * @return the makespan tick (last core's finish).
     */
    Tick run(std::vector<TxnSource> sources);

    /** Shard 0's persist-path tracer, or null when tracing is off. */
    Tracer *tracer() { return domains_[0]->tracer.get(); }

    /** Shard 0's time-series sampler, or null when sampling is off.
     *  run() finishes every shard's sampler at the makespan tick. */
    MetricsSampler *sampler() { return domains_[0]->sampler.get(); }

    // --- merged cross-shard views (equal to the single controller's
    // --- numbers when shards == 1) --------------------------------
    bool tracing() const { return config_.trace; }
    /** Merged Chrome trace JSON over every shard's tracer ("" when
     *  tracing is off; byte-identical to the single tracer's JSON
     *  when shards == 1). */
    std::string traceJson() const;
    std::uint64_t traceRecorded() const;
    std::uint64_t traceDropped() const;
    /** Merged METRICS JSON over every shard's sampler ("" when
     *  sampling is off). */
    std::string metricsJson() const;
    std::size_t metricsWindows() const;
    std::uint64_t mcWrites() const;
    double avgWriteLatencyNs() const;
    /** Persist-stage breakdown merged across shards. */
    PersistBreakdown mergedBreakdown() const;
    double dupRatio() const;
    std::uint64_t treeCacheHits() const;
    std::uint64_t treeCacheMisses() const;
    double treeCacheHitRate() const;
    std::uint64_t merkleCoalescedLevels() const;
    std::uint64_t merkleSavedRehashes() const;
    std::uint64_t consumedFullyPreExecuted() const;
    ResilienceCounters mergedResilience() const;
    CritPathSummary mergedCritPath() const;

    /**
     * Dump every component's statistics to the stream.
     *
     * Format: one stat per line as "group.stat value", where `group`
     * is the component instance ("core0", "mc", "nvm", "bmoEngine",
     * "backend", "janus") and composite stats expand to dotted
     * sub-stats ("mc.persistLatencyNs.p99"). Groups are emitted in
     * lexicographic group-name order and stats sort within their
     * group (see StatGroup::dump), so two runs of the same simulation
     * produce byte-identical dumps. On a sharded machine the
     * channel-level groups are deterministic merges over the shards
     * (see StatGroup::merge), keeping the schema identical at every
     * shard count.
     */
    void dumpStats(std::ostream &os);

    /** The same statistics as one JSON object
     *  `{"group": {"stat": value, ...}, ...}` (same ordering). */
    void dumpStatsJson(std::ostream &os);

  private:
    class PortImpl;

    /** Everything one memory channel owns. */
    struct ShardDomain
    {
        EventQueue eventq;
        ShardOutbox outbox;
        std::unique_ptr<Tracer> tracer;
        std::unique_ptr<MetricsSampler> sampler;
        std::unique_ptr<MemoryController> mc;
        std::unique_ptr<PortImpl> port;
    };

    /** Build all stat groups, sorted by group name. */
    std::vector<StatGroup> collectStats();

    /** Resolve the shard-scheduler worker count for run(). */
    unsigned effectiveShardThreads() const;

    SystemConfig config_;
    SparseMemory mem_;
    ShardRouter router_;
    std::vector<std::unique_ptr<ShardDomain>> domains_;
    std::vector<std::unique_ptr<TimingCore>> cores_;
    RegionAllocator alloc_;
    /** Per-shard heap stripes (RegionAffine with shards > 1 only). */
    std::vector<std::unique_ptr<RegionAllocator>> stripeAllocs_;
    Tick window_ = 0;
    std::uint64_t lastRounds_ = 0;
    std::uint64_t lastMessages_ = 0;
};

} // namespace janus

#endif // JANUS_HARNESS_SYSTEM_HH
