/**
 * @file
 * NvmSystem: assembles a complete simulated machine — event queue,
 * functional memory, memory controller (with BMOs / Janus), and N
 * timing cores — from a single SystemConfig mirroring the paper's
 * Table 3.
 */

#ifndef JANUS_HARNESS_SYSTEM_HH
#define JANUS_HARNESS_SYSTEM_HH

#include <memory>
#include <vector>

#include "cpu/timing_core.hh"
#include "ir/ir.hh"
#include "mem/sparse_memory.hh"
#include "memctrl/memory_controller.hh"
#include "sim/eventq.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace janus
{

/** Whole-system configuration (Table 3 defaults). */
struct SystemConfig
{
    unsigned cores = 1;
    WritePathMode mode = WritePathMode::Janus;
    BmoConfig bmo;
    NvmConfig nvm;
    CoreConfig core;
    /** Per-core Janus queue/buffer sizes (scaled by cores). */
    JanusHwConfig janusHwPerCore;
    /** BMO units per core (Table 3: 4, shared). */
    unsigned bmoUnitsPerCore = 4;
    /** Figure 14: multiply units and Janus buffers by this factor. */
    unsigned resourceScale = 1;
    /** Figure 14 "unlimited" point. */
    bool unlimitedResources = false;
    /** Online resilience layer (inert unless enabled). */
    ResilienceConfig resilience;
    /** Base/extent of the persistent heap handed to workloads. */
    Addr heapBase = 1 * 1024 * 1024;
    Addr heapBytes = Addr(2) * 1024 * 1024 * 1024;
    /** Record a persist-path trace for this system (see sim/trace.hh;
     *  benches turn this on when JANUS_TRACE is set). */
    bool trace = false;
    /** Trace ring capacity in events. */
    std::size_t traceCapacity = 1 << 16;
    /** Critical-path persist profiling (pure observer; see
     *  sim/critpath.hh). */
    bool profilePersist = true;
    /** Windowed time-series sampling (see sim/metrics.hh; benches
     *  turn this on when JANUS_METRICS is set). */
    bool metrics = false;
    /** Metrics window width in ticks. */
    Tick metricsWindowTicks = 10 * ticks::us;
};

/** A fully assembled simulated NVM machine. */
class NvmSystem
{
  public:
    NvmSystem(const SystemConfig &config, const Module &module);

    EventQueue &eventq() { return eventq_; }
    SparseMemory &mem() { return mem_; }
    MemoryController &mc() { return *mc_; }
    TimingCore &core(unsigned i) { return *cores_.at(i); }
    unsigned numCores() const
    {
        return static_cast<unsigned>(cores_.size());
    }
    RegionAllocator &allocator() { return alloc_; }
    const SystemConfig &config() const { return config_; }

    /**
     * Run one transaction source per core to exhaustion.
     * @return the makespan tick (last core's finish).
     */
    Tick run(std::vector<TxnSource> sources);

    /** The persist-path tracer, or null when tracing is off. */
    Tracer *tracer() { return tracer_.get(); }

    /** The time-series sampler, or null when sampling is off. run()
     *  finishes it at the makespan tick. */
    MetricsSampler *sampler() { return sampler_.get(); }

    /**
     * Dump every component's statistics to the stream.
     *
     * Format: one stat per line as "group.stat value", where `group`
     * is the component instance ("core0", "mc", "nvm", "bmoEngine",
     * "backend", "janus") and composite stats expand to dotted
     * sub-stats ("mc.persistLatencyNs.p99"). Groups are emitted in
     * lexicographic group-name order and stats sort within their
     * group (see StatGroup::dump), so two runs of the same simulation
     * produce byte-identical dumps.
     */
    void dumpStats(std::ostream &os);

    /** The same statistics as one JSON object
     *  `{"group": {"stat": value, ...}, ...}` (same ordering). */
    void dumpStatsJson(std::ostream &os);

  private:
    /** Build all stat groups, sorted by group name. */
    std::vector<StatGroup> collectStats();

    SystemConfig config_;
    EventQueue eventq_;
    SparseMemory mem_;
    std::unique_ptr<Tracer> tracer_;
    std::unique_ptr<MetricsSampler> sampler_;
    std::unique_ptr<MemoryController> mc_;
    std::vector<std::unique_ptr<TimingCore>> cores_;
    RegionAllocator alloc_;
};

} // namespace janus

#endif // JANUS_HARNESS_SYSTEM_HH
