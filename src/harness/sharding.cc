#include "harness/sharding.hh"

#include <algorithm>

#include "common/logging.hh"

namespace janus
{

ShardRouter::ShardRouter(unsigned shards, ShardRouterPolicy policy,
                         Addr heap_base, Addr heap_bytes)
    : shards_(shards), policy_(policy), heapBase_(heap_base)
{
    janus_assert(shards >= 1, "need at least one shard");
    stripeBytes_ = (heap_bytes / shards) & ~Addr(lineBytes - 1);
    janus_assert(stripeBytes_ >= lineBytes,
                 "heap too small for %u shard stripes", shards);
}

unsigned
ShardRouter::homeShard(Addr addr) const
{
    if (shards_ == 1)
        return 0;
    if (policy_ == ShardRouterPolicy::LineInterleave)
        return static_cast<unsigned>((addr / lineBytes) % shards_);
    // RegionAffine: contiguous stripes over the workload heap.
    // Anything outside the striped extent (nothing in practice —
    // every workload allocation comes from a stripe) homes to the
    // last shard via the clamp.
    if (addr < heapBase_)
        return 0;
    const Addr idx = (addr - heapBase_) / stripeBytes_;
    return static_cast<unsigned>(
        std::min<Addr>(idx, shards_ - 1));
}

Addr
ShardRouter::stripeBase(unsigned s) const
{
    janus_assert(s < shards_, "stripe index out of range");
    return heapBase_ + Addr(s) * stripeBytes_;
}

std::vector<ShardMsg>
ShardOutbox::drain()
{
    std::vector<ShardMsg> out;
    out.swap(msgs_);
    return out;
}

ShardScheduler::ShardScheduler(std::vector<Shard> shards, Tick window,
                               unsigned threads)
    : shards_(std::move(shards)), window_(window),
      threads_(std::max(1u, std::min(
                   threads,
                   static_cast<unsigned>(shards_.size()))))
{
    janus_assert(!shards_.empty(), "scheduler needs shards");
    if (threads_ > 1) {
        workers_.reserve(threads_);
        for (unsigned t = 0; t < threads_; ++t)
            workers_.emplace_back([this] { workerLoop(); });
    }
}

ShardScheduler::~ShardScheduler()
{
    if (!workers_.empty()) {
        {
            std::lock_guard<std::mutex> l(m_);
            stop_ = true;
        }
        roundCv_.notify_all();
        for (auto &w : workers_)
            w.join();
    }
}

void
ShardScheduler::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> l(m_);
            roundCv_.wait(l, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
        }
        const Tick h = horizon_;
        for (;;) {
            const std::size_t s =
                nextShard_.fetch_add(1, std::memory_order_relaxed);
            if (s >= shards_.size())
                break;
            shards_[s].eq->run(h);
        }
        {
            std::lock_guard<std::mutex> l(m_);
            if (--running_ == 0)
                doneCv_.notify_one();
        }
    }
}

void
ShardScheduler::runShardsTo(Tick horizon)
{
    if (threads_ == 1) {
        for (auto &s : shards_)
            s.eq->run(horizon);
        return;
    }
    {
        std::lock_guard<std::mutex> l(m_);
        horizon_ = horizon;
        nextShard_.store(0, std::memory_order_relaxed);
        running_ = threads_;
        ++generation_;
    }
    roundCv_.notify_all();
    std::unique_lock<std::mutex> l(m_);
    doneCv_.wait(l, [&] { return running_ == 0; });
}

void
ShardScheduler::run()
{
    for (;;) {
        Tick min_next = maxTick;
        for (auto &s : shards_)
            min_next = std::min(min_next, s.eq->nextEventTick());
        if (min_next == maxTick)
            break; // queues empty; outboxes were drained last round

        // Horizon for this round. run(limit) executes events with
        // when <= limit, so every shard ends the round at exactly
        // `horizon` (curTick == horizon) and the barrier delivery at
        // max(due, horizon) can never schedule into a shard's past.
        const Tick horizon =
            min_next > maxTick - 1 - window_ ? maxTick - 1
                                             : min_next + window_;

        runShardsTo(horizon);
        ++rounds_;

        // Deliver this round's cross-shard messages in canonical
        // (due, src, seq) order — independent of which worker ran
        // which shard, so insertion sequence numbers on the
        // destination queues are reproducible.
        pending_.clear();
        for (auto &s : shards_) {
            if (s.outbox->empty())
                continue;
            auto msgs = s.outbox->drain();
            pending_.insert(pending_.end(),
                            std::make_move_iterator(msgs.begin()),
                            std::make_move_iterator(msgs.end()));
        }
        if (pending_.empty())
            continue;
        std::sort(pending_.begin(), pending_.end(),
                  [](const ShardMsg &a, const ShardMsg &b) {
                      if (a.due != b.due)
                          return a.due < b.due;
                      if (a.src != b.src)
                          return a.src < b.src;
                      return a.seq < b.seq;
                  });
        for (auto &msg : pending_) {
            janus_assert(msg.dst < shards_.size(),
                         "message to unknown shard %u", msg.dst);
            shards_[msg.dst].eq->schedule(
                std::max(msg.due, horizon), std::move(msg.fn));
            ++delivered_;
        }
        pending_.clear();
    }
}

} // namespace janus
