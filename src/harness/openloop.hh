/**
 * @file
 * Open-loop (arrival-process-driven) load generation. Every bench
 * before this was closed-loop — the next transaction issued only
 * when the previous one persisted — so the machine could never see
 * a queue it couldn't drain. Here requests arrive on their own
 * schedule: per-core arrival ticks are precomputed from the seed
 * (a pure function of the config, so the offered load is identical
 * at every shard/thread count) and the OpenLoopDriver feeds each
 * core through TimingCore's OpenLoopFeed hook, idling the core
 * between arrivals and letting a backlog build when the channel
 * cannot keep up.
 *
 * The driver also fronts the controller's QoS admission path: each
 * due request is offered to its core's home-channel controller,
 * which may admit it, bounce it with a retry-after (the driver backs
 * off and re-offers), terminally reject it, or shed it (deadline
 * passed / saturation policy). Per-tenant accounting keeps the
 * books: offered == completed + shed + rejected, always.
 */

#ifndef JANUS_HARNESS_OPENLOOP_HH
#define JANUS_HARNESS_OPENLOOP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "cpu/timing_core.hh"
#include "memctrl/qos.hh"

namespace janus
{

/** Arrival process shapes. */
enum class ArrivalProcess : std::uint8_t
{
    Poisson,     ///< exponential inter-arrivals at a fixed rate
    Bursty,      ///< Markov-modulated on/off (MMPP-2)
    DiurnalRamp, ///< rate ramps linearly across the run
};

/** Open-loop load-generation configuration. */
struct OpenLoopConfig
{
    /** Master switch; false keeps the classic closed-loop drive. */
    bool enabled = false;

    ArrivalProcess process = ArrivalProcess::Poisson;

    /** Mean offered load per core, requests per microsecond. */
    double ratePerUsPerCore = 1.0;

    /** Per-core multiplier on ratePerUsPerCore (cores beyond the
     *  vector, or an empty vector, use 1.0). Lets a tenant mix
     *  offer asymmetric load — e.g. latency-critical readers at a
     *  fixed comfortable rate while bulk-writer cores sweep past
     *  saturation. */
    std::vector<double> rateFactorOfCore;

    /** Requests per core (the schedule length). */
    unsigned requestsPerCore = 1000;

    /** Bursty: long-run fraction of time in the ON state. */
    double burstOnFraction = 0.5;
    /** Bursty: ON-state rate multiplier (OFF rate is derived so the
     *  long-run mean stays ratePerUsPerCore, clamped at zero). */
    double burstRateBoost = 1.8;
    /** Bursty: mean length of one ON+OFF phase pair. */
    Tick burstPhaseTicks = 50 * ticks::us;

    /** Ramp: instantaneous rate factor at the first request. */
    double rampStartFactor = 0.25;
    /** Ramp: instantaneous rate factor at the last request. */
    double rampEndFactor = 1.75;

    /** Backlog depth (due-but-undispatched requests on one core)
     *  past which the run is flagged as diverged — the open-loop
     *  queue is growing without bound. */
    std::uint64_t backlogDivergedDepth = 64;
};

/**
 * The seed-derived arrival schedule for one core: strictly
 * increasing ticks, length cfg.requestsPerCore. Pure function of
 * (cfg, seed, core) — never of shard/thread layout.
 */
std::vector<Tick> makeArrivalSchedule(const OpenLoopConfig &cfg,
                                      std::uint64_t seed,
                                      unsigned core);

/** Per-tenant open-loop accounting, merged across cores. */
struct OpenLoopTenantStats
{
    std::string name;
    unsigned priority = 0;
    /** Requests the schedule offered (== completed+shed+rejected). */
    std::uint64_t offered = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t rejected = 0;
    /** Retry-after bounces (not terminal; the request was re-offered
     *  and eventually completed, shed or rejected). */
    std::uint64_t retries = 0;
    /** Peak due-but-undispatched backlog on any one core. */
    std::uint64_t maxBacklog = 0;
    /** True when maxBacklog crossed backlogDivergedDepth. */
    bool diverged = false;
    /** Response time (scheduled arrival -> persist-complete), ns.
     *  Exact quantiles over every completed request. */
    double meanNs = 0;
    double p50Ns = 0;
    double p99Ns = 0;
    double p999Ns = 0;
};

class MemoryController;

/**
 * Drives every core of one machine from its precomputed arrival
 * schedule. One instance per experiment; attach() each core before
 * NvmSystem::run, harvest() after. All mutable state is per-core,
 * touched only from that core's event context.
 */
class OpenLoopDriver : public OpenLoopFeed
{
  public:
    /**
     * @param cfg          open-loop config (enabled assumed)
     * @param qos          tenant table / core->tenant mapping (the
     *                     same config the controllers run; may be
     *                     disabled — then all admission is identity
     *                     and every core maps to tenant 0)
     * @param numCores     cores in the machine
     * @param seed         workload seed (schedules derive from it)
     */
    OpenLoopDriver(const OpenLoopConfig &cfg, const QosConfig &qos,
                   unsigned numCores, std::uint64_t seed);

    /** Wire one core: its home-channel controller (admission) and
     *  the workload's closed-loop transaction source (payloads). */
    void attach(unsigned core, MemoryController *mc,
                TxnSource inner);

    // OpenLoopFeed
    Status next(unsigned core, Tick now, Tick &wake_at,
                std::string &fn,
                std::vector<std::uint64_t> &args) override;

    /** Per-tenant stats, merged over cores in core order. */
    std::vector<OpenLoopTenantStats> harvest() const;

    /** Requests completed on one core (shed-tolerant validation). */
    std::uint64_t completedOn(unsigned core) const
    {
        return cores_[core].completed;
    }

  private:
    struct PerCore
    {
        std::vector<Tick> schedule;
        MemoryController *mc = nullptr;
        TxnSource inner;
        std::size_t nextIdx = 0;
        /** Scan pointer for O(1)-amortized backlog tracking. */
        std::size_t dueScan = 0;
        unsigned attempt = 0;
        Tick retryAt = 0;
        bool inFlight = false;
        Tick inFlightArrival = 0;
        std::uint64_t completed = 0;
        std::uint64_t shed = 0;
        std::uint64_t rejected = 0;
        std::uint64_t retries = 0;
        std::uint64_t maxBacklog = 0;
        /** Response time per completed request, in ticks. */
        std::vector<Tick> latencies;
    };

    OpenLoopConfig cfg_;
    QosConfig qos_;
    std::vector<PerCore> cores_;

    unsigned tenantOf(unsigned core) const;
    unsigned numTenants() const;
};

} // namespace janus

#endif // JANUS_HARNESS_OPENLOOP_HH
