#include "harness/experiment.hh"

#include <chrono>
#include <memory>

#include "common/logging.hh"
#include "harness/runner.hh"
#include "txn/undo_log.hh"

namespace janus
{

ExperimentResult
runExperiment(const ExperimentConfig &requested)
{
    const auto wall_start = std::chrono::steady_clock::now();
    // Every run funnels through here, so applying the global seed
    // override at this one point makes the whole suite replayable.
    ExperimentConfig config = requested;
    if (std::optional<std::uint64_t> seed = seedOverride())
        config.workload.seed = *seed;
    if (std::optional<unsigned> shards = shardOverride())
        config.sys.shards = *shards;
    if (std::optional<unsigned> st = shardThreadsOverride())
        config.sys.shardThreads = *st;
    if (std::optional<ShardRouterPolicy> p = shardPolicyOverride())
        config.sys.shardPolicy = *p;
    auto workload = makeWorkload(config.workloadName, config.workload);

    Module module;
    buildTxnLibrary(module);
    workload->buildKernels(module,
                           config.instr == Instrumentation::Manual);
    ExperimentResult result;
    if (config.instr == Instrumentation::Auto)
        result.instrReport = autoInstrument(module);
    verify(module);

    NvmSystem system(config.sys, module);
    // Open-loop drive: the workload's closed-loop stream becomes the
    // payload source behind a seed-derived arrival schedule, gated
    // through each core's home-channel admission path. The schedule
    // is a pure function of (config, seed, core), so the offered
    // load is identical at every shard/thread count.
    std::unique_ptr<OpenLoopDriver> driver;
    if (config.openLoop.enabled)
        driver = std::make_unique<OpenLoopDriver>(
            config.openLoop, config.sys.qos, config.sys.cores,
            config.workload.seed);
    std::vector<TxnSource> sources;
    for (unsigned c = 0; c < config.sys.cores; ++c) {
        workload->setupCore(c, system);
        if (driver) {
            driver->attach(c, &system.mc(system.shardOfCore(c)),
                           workload->source(c, system));
            system.core(c).setOpenLoopFeed(driver.get());
            sources.emplace_back(); // feed path; never invoked
        } else {
            sources.push_back(workload->source(c, system));
        }
    }
    const auto sim_start = std::chrono::steady_clock::now();
    result.makespan = system.run(std::move(sources));
    result.simSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - sim_start)
            .count();

    // Under open-loop drive, admission control may legitimately shed
    // or reject requests, so closed-loop workload invariants (every
    // scheduled transaction ran) no longer hold; only workloads with
    // shed-tolerant validation should set validate with openLoop.
    if (config.validate && !config.openLoop.enabled)
        for (unsigned c = 0; c < config.sys.cores; ++c)
            workload->validate(system.mem(), c);

    // Harvest through the system's merged cross-shard views; with a
    // single shard every one of these equals the lone controller's
    // numbers bit-for-bit.
    result.avgWriteLatencyNs = system.avgWriteLatencyNs();
    const PersistBreakdown bd = system.mergedBreakdown();
    result.stageBmoNs = bd.bmoNs.mean();
    result.stageQueueNs = bd.queueNs.mean();
    result.stageOrderNs = bd.orderNs.mean();
    result.persistP50Ns = bd.totalHistNs.quantile(0.50);
    result.persistP99Ns = bd.totalHistNs.quantile(0.99);
    result.persistP999Ns = bd.totalHistNs.quantile(0.999);
    result.measuredDupRatio = system.dupRatio();
    result.treeCacheHits = system.treeCacheHits();
    result.treeCacheMisses = system.treeCacheMisses();
    result.treeCacheHitRate = system.treeCacheHitRate();
    result.merkleCoalescedLevels = system.merkleCoalescedLevels();
    result.merkleSavedRehashes = system.merkleSavedRehashes();
    if (config.sys.mode == WritePathMode::Janus) {
        std::uint64_t total = system.mcWrites();
        result.fullyPreExecutedFrac =
            total ? static_cast<double>(
                        system.consumedFullyPreExecuted()) /
                        static_cast<double>(total)
                  : 0.0;
    }
    for (unsigned c = 0; c < config.sys.cores; ++c) {
        TimingCore &core = system.core(c);
        result.instructions += core.instructions();
        result.transactions += core.transactions();
        result.persists += core.persists();
        result.preRequests += core.preRequests();
        result.fenceStallTicks += core.fenceStallTicks();
    }
    result.eventsExecuted = system.eventsExecuted();
    result.schedulerRounds = system.schedulerRounds();
    result.crossShardMessages = system.crossShardMessages();
    result.resilience = system.mergedResilience();
    if (system.tracing()) {
        result.traceJson = system.traceJson();
        result.traceEventsRecorded = system.traceRecorded();
        result.traceEventsDropped = system.traceDropped();
    }
    result.critPath = system.mergedCritPath();
    if (driver)
        result.tenants = driver->harvest();
    if (config.sys.metrics) {
        result.metricsJson = system.metricsJson();
        result.metricsWindows = system.metricsWindows();
    }
    result.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    return result;
}

double
speedupOverSerialized(const ExperimentConfig &config)
{
    ExperimentConfig serial = config;
    serial.sys.mode = WritePathMode::Serialized;
    serial.instr = Instrumentation::None;
    // The baseline and the optimized run are independent systems:
    // run them as a two-experiment batch on the worker pool.
    ExperimentConfig configs[] = {serial, config};
    std::vector<ExperimentResult> results =
        runExperiments(configs, 2);
    janus_assert(results[1].makespan > 0, "empty run");
    return static_cast<double>(results[0].makespan) /
           static_cast<double>(results[1].makespan);
}

} // namespace janus
