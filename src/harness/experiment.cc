#include "harness/experiment.hh"

#include <chrono>

#include "common/logging.hh"
#include "harness/runner.hh"
#include "txn/undo_log.hh"

namespace janus
{

ExperimentResult
runExperiment(const ExperimentConfig &requested)
{
    const auto wall_start = std::chrono::steady_clock::now();
    // Every run funnels through here, so applying the global seed
    // override at this one point makes the whole suite replayable.
    ExperimentConfig config = requested;
    if (std::optional<std::uint64_t> seed = seedOverride())
        config.workload.seed = *seed;
    auto workload = makeWorkload(config.workloadName, config.workload);

    Module module;
    buildTxnLibrary(module);
    workload->buildKernels(module,
                           config.instr == Instrumentation::Manual);
    ExperimentResult result;
    if (config.instr == Instrumentation::Auto)
        result.instrReport = autoInstrument(module);
    verify(module);

    NvmSystem system(config.sys, module);
    std::vector<TxnSource> sources;
    for (unsigned c = 0; c < config.sys.cores; ++c) {
        workload->setupCore(c, system);
        sources.push_back(workload->source(c, system));
    }
    result.makespan = system.run(std::move(sources));

    if (config.validate)
        for (unsigned c = 0; c < config.sys.cores; ++c)
            workload->validate(system.mem(), c);

    MemoryController &mc = system.mc();
    result.avgWriteLatencyNs = mc.avgWriteLatencyNs();
    const PersistBreakdown &bd = mc.breakdown();
    result.stageBmoNs = bd.bmoNs.mean();
    result.stageQueueNs = bd.queueNs.mean();
    result.stageOrderNs = bd.orderNs.mean();
    result.persistP50Ns = bd.totalHistNs.quantile(0.50);
    result.persistP99Ns = bd.totalHistNs.quantile(0.99);
    result.measuredDupRatio = mc.backend().dupRatio();
    const MerkleTree &tree = mc.backend().merkleTree();
    result.treeCacheHits = tree.cacheHits();
    result.treeCacheMisses = tree.cacheMisses();
    result.treeCacheHitRate = tree.cacheHitRate();
    result.merkleCoalescedLevels = tree.coalescedPathLevels();
    result.merkleSavedRehashes = tree.savedInteriorRehashes();
    if (config.sys.mode == WritePathMode::Janus) {
        const JanusFrontend &fe = mc.frontend();
        std::uint64_t total = mc.writes();
        result.fullyPreExecutedFrac =
            total ? static_cast<double>(fe.consumedFullyPreExecuted()) /
                        static_cast<double>(total)
                  : 0.0;
    }
    for (unsigned c = 0; c < config.sys.cores; ++c) {
        TimingCore &core = system.core(c);
        result.instructions += core.instructions();
        result.transactions += core.transactions();
        result.persists += core.persists();
        result.preRequests += core.preRequests();
        result.fenceStallTicks += core.fenceStallTicks();
    }
    result.eventsExecuted = system.eventq().executed();
    result.resilience = mc.resilience().counters();
    if (Tracer *tracer = system.tracer()) {
        result.traceJson = tracer->chromeJson();
        result.traceEventsRecorded = tracer->recorded();
        result.traceEventsDropped = tracer->dropped();
    }
    result.critPath = mc.critPath();
    if (MetricsSampler *sampler = system.sampler()) {
        result.metricsJson = sampler->json();
        result.metricsWindows = sampler->windows();
    }
    result.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    return result;
}

double
speedupOverSerialized(const ExperimentConfig &config)
{
    ExperimentConfig serial = config;
    serial.sys.mode = WritePathMode::Serialized;
    serial.instr = Instrumentation::None;
    // The baseline and the optimized run are independent systems:
    // run them as a two-experiment batch on the worker pool.
    ExperimentConfig configs[] = {serial, config};
    std::vector<ExperimentResult> results =
        runExperiments(configs, 2);
    janus_assert(results[1].makespan > 0, "empty run");
    return static_cast<double>(results[0].makespan) /
           static_cast<double>(results[1].makespan);
}

} // namespace janus
