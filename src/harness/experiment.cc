#include "harness/experiment.hh"

#include "common/logging.hh"
#include "txn/undo_log.hh"

namespace janus
{

ExperimentResult
runExperiment(const ExperimentConfig &config)
{
    auto workload = makeWorkload(config.workloadName, config.workload);

    Module module;
    buildTxnLibrary(module);
    workload->buildKernels(module,
                           config.instr == Instrumentation::Manual);
    ExperimentResult result;
    if (config.instr == Instrumentation::Auto)
        result.instrReport = autoInstrument(module);
    verify(module);

    NvmSystem system(config.sys, module);
    std::vector<TxnSource> sources;
    for (unsigned c = 0; c < config.sys.cores; ++c) {
        workload->setupCore(c, system);
        sources.push_back(workload->source(c, system));
    }
    result.makespan = system.run(std::move(sources));

    if (config.validate)
        for (unsigned c = 0; c < config.sys.cores; ++c)
            workload->validate(system.mem(), c);

    MemoryController &mc = system.mc();
    result.avgWriteLatencyNs = mc.avgWriteLatencyNs();
    result.measuredDupRatio = mc.backend().dupRatio();
    if (config.sys.mode == WritePathMode::Janus) {
        const JanusFrontend &fe = mc.frontend();
        std::uint64_t total = mc.writes();
        result.fullyPreExecutedFrac =
            total ? static_cast<double>(fe.consumedFullyPreExecuted()) /
                        static_cast<double>(total)
                  : 0.0;
    }
    for (unsigned c = 0; c < config.sys.cores; ++c) {
        TimingCore &core = system.core(c);
        result.instructions += core.instructions();
        result.transactions += core.transactions();
        result.persists += core.persists();
        result.preRequests += core.preRequests();
        result.fenceStallTicks += core.fenceStallTicks();
    }
    return result;
}

double
speedupOverSerialized(const ExperimentConfig &config)
{
    ExperimentConfig serial = config;
    serial.sys.mode = WritePathMode::Serialized;
    serial.instr = Instrumentation::None;
    ExperimentResult base = runExperiment(serial);
    ExperimentResult opt = runExperiment(config);
    janus_assert(opt.makespan > 0, "empty run");
    return static_cast<double>(base.makespan) /
           static_cast<double>(opt.makespan);
}

} // namespace janus
