#include "janus/janus_hw.hh"

#include <algorithm>

#include "common/logging.hh"

namespace janus
{

JanusFrontend::JanusFrontend(const JanusHwConfig &config,
                             BmoEngine &engine,
                             const BmoBackendState &backend)
    : config_(config), engine_(engine), backend_(backend)
{
    janus_assert(config.opQueueEntries > 0 && config.irbEntries > 0 &&
                     config.requestQueueEntries > 0,
                 "Janus queues need nonzero capacity");
    const BmoGraph &graph = engine.graph();
    latencyOverride_.assign(graph.size(), maxTick);
    for (SubOpId id = 0; id < graph.size(); ++id) {
        const std::string &name = graph.subOp(id).name;
        if (!name.empty() && name[0] == 'I')
            integrityLevels_.emplace_back(
                id, static_cast<unsigned>(
                        std::stoul(name.substr(1))));
    }
}

const std::vector<Tick> *
JanusFrontend::integrityOverride(const IrbEntry &entry,
                                 ExternalInput avail, bool mark_epoch)
{
    const BmoConfig &bmo = backend_.config();
    if (integrityLevels_.empty() || !bmo.streamlinedIntegrity ||
        !entry.lineAddr)
        return nullptr;
    const SubOpId i1 = integrityLevels_.front().first;
    if (entry.exec.done(i1) ||
        !hasInput(avail, engine_.graph().required(i1)))
        return nullptr; // this call schedules no tree updates
    MerklePathProbe probe = backend_.merkleTree().probeUpdatePath(
        backend_.merkleLeafOf(*entry.lineAddr), mark_epoch);
    for (const auto &[id, level] : integrityLevels_) {
        Tick latency = bmo.merkleHashLatency;
        switch (probe.kind[level]) {
          case MerklePathProbe::Coalesced:
            latency = bmo.merkleCoalesceLatency;
            break;
          case MerklePathProbe::CacheMiss:
            latency += bmo.merkleNodeMissLatency;
            break;
          default:
            break; // cache hit: the node is on chip, hash only
        }
        latencyOverride_[id] = latency;
    }
    return &latencyOverride_;
}

void
JanusFrontend::setTracer(Tracer *tracer)
{
    tracer_ = tracer;
    if (tracer_ == nullptr)
        return;
    track_ = tracer_->track("janusFrontend");
    irbHitLabel_ = tracer_->label("irbHit");
    irbMissLabel_ = tracer_->label("irbMiss");
    chunkLabel_ = tracer_->label("preexecChunk");
}

void
JanusFrontend::purgeOpQueue(Tick now)
{
    std::erase_if(opQueue_, [now](Tick done) { return done <= now; });
}

void
JanusFrontend::expireEntries(Tick now)
{
    while (!entries_.empty() &&
           entries_.front().created + config_.maxEntryAge < now) {
        ++agedOut_;
        eraseEntry(entries_.begin());
    }
}

JanusFrontend::EntryList::iterator
JanusFrontend::findByObj(const PreObjId &obj, unsigned chunk)
{
    return std::find_if(entries_.begin(), entries_.end(),
                        [&](const IrbEntry &e) {
                            return e.obj == obj && e.chunk == chunk;
                        });
}

void
JanusFrontend::eraseEntry(EntryList::iterator it)
{
    if (it->lineAddr) {
        auto addr_it = byAddr_.find(*it->lineAddr);
        if (addr_it != byAddr_.end() && addr_it->second == it)
            byAddr_.erase(addr_it);
    }
    entries_.erase(it);
}

void
JanusFrontend::executeEligible(IrbEntry &entry, Tick now)
{
    ExternalInput avail = ExternalInput::None;
    if (entry.lineAddr)
        avail = avail | ExternalInput::Addr;
    if (entry.data)
        avail = avail | ExternalInput::Data;

    unsigned before = entry.exec.completedCount();
    const std::vector<Tick> *override_lat =
        integrityOverride(entry, avail, /*mark_epoch=*/false);
    Tick done = engine_.execute(entry.exec, avail, now,
                                BmoExecMode::Parallel, override_lat);
    if (entry.exec.completedCount() > before) {
        // The launched sub-ops occupy an operation-queue slot until
        // they complete.
        opQueue_.push_back(done);
    }
}

void
JanusFrontend::launchChunk(const PreObjId &obj, unsigned chunk_index,
                           const PreChunk &chunk, Tick now)
{
    purgeOpQueue(now);
    expireEntries(now);

    auto it = findByObj(obj, chunk_index);
    if (it == entries_.end()) {
        if (entries_.size() >= config_.irbEntries) {
            ++droppedIrb_;
            return;
        }
        if (opQueue_.size() >= config_.opQueueEntries) {
            ++droppedOpQueue_;
            return;
        }
        entries_.push_back(IrbEntry{obj, chunk_index, std::nullopt,
                                    std::nullopt, std::nullopt, false,
                                    BmoExecState(engine_.graph()), now});
        it = std::prev(entries_.end());
    } else if (opQueue_.size() >= config_.opQueueEntries) {
        // Existing entry but no room to launch more sub-ops now; the
        // merge of inputs alone is not worth modeling.
        ++droppedOpQueue_;
        return;
    }

    IrbEntry &entry = *it;
    if (chunk.lineAddr && !entry.lineAddr) {
        entry.lineAddr = chunk.lineAddr;
        byAddr_[*chunk.lineAddr] = it;
    }
    if (chunk.data)
        entry.data = chunk.data;

    // Probe the dedup metadata once so that a later metadata change
    // can be detected at consume time (Section 4.3.1, case 2).
    if (entry.data && !entry.dedupProbed) {
        entry.dedupPeek = backend_.peekDedup(*entry.data);
        entry.dedupProbed = true;
    }

    ++chunksPreExecuted_;
    JANUS_TRACE_INSTANT(tracer_, track_, chunkLabel_, now,
                        entry.lineAddr ? *entry.lineAddr : 0);
    executeEligible(entry, now + config_.decodeLatency);
    irbOccupancy_.set(static_cast<double>(entries_.size()), now);
}

void
JanusFrontend::issueImmediate(const PreObjId &obj,
                              const std::vector<PreChunk> &chunks,
                              Tick now)
{
    ++requestsIssued_;
    if (disabled(now)) {
        ++droppedDisabled_;
        return; // dropping is always correct, only slower
    }
    for (unsigned i = 0; i < chunks.size(); ++i)
        launchChunk(obj, i, chunks[i], now);
}

void
JanusFrontend::buffer(const PreObjId &obj,
                      const std::vector<PreChunk> &chunks, Tick now)
{
    ++requestsIssued_;
    if (disabled(now)) {
        ++droppedDisabled_;
        return;
    }
    auto it = std::find_if(bufferedChunks_.begin(), bufferedChunks_.end(),
                           [&](const auto &kv) {
                               return kv.first == obj;
                           });
    if (it == bufferedChunks_.end()) {
        bufferedChunks_.emplace_back(obj, std::vector<PreChunk>());
        it = std::prev(bufferedChunks_.end());
    }
    for (const PreChunk &chunk : chunks) {
        // Coalesce with an already-buffered chunk for the same line.
        auto same_line =
            chunk.lineAddr
                ? std::find_if(it->second.begin(), it->second.end(),
                               [&](const PreChunk &c) {
                                   return c.lineAddr == chunk.lineAddr;
                               })
                : it->second.end();
        if (same_line != it->second.end()) {
            if (chunk.data) {
                if (chunk.patchSize > 0 && same_line->data) {
                    // Overlay only the bytes this request contributes.
                    std::uint8_t patch[lineBytes];
                    chunk.data->read(chunk.patchOffset, patch,
                                     chunk.patchSize);
                    same_line->data->write(chunk.patchOffset, patch,
                                           chunk.patchSize);
                } else {
                    same_line->data = chunk.data;
                }
            }
            continue;
        }
        it->second.push_back(chunk);
        ++bufferedCount_;
        // FIFO drop from the head when the request queue overflows.
        while (bufferedCount_ > config_.requestQueueEntries) {
            auto &oldest = bufferedChunks_.front();
            oldest.second.erase(oldest.second.begin());
            --bufferedCount_;
            ++droppedRequestQueue_;
            if (oldest.second.empty())
                bufferedChunks_.pop_front();
        }
    }
}

void
JanusFrontend::startBuffered(const PreObjId &obj, Tick now)
{
    if (disabled(now)) {
        ++droppedDisabled_;
        return;
    }
    auto it = std::find_if(bufferedChunks_.begin(), bufferedChunks_.end(),
                           [&](const auto &kv) {
                               return kv.first == obj;
                           });
    if (it == bufferedChunks_.end())
        return; // everything was dropped; performance-only effect
    std::vector<PreChunk> chunks = std::move(it->second);
    bufferedCount_ -= static_cast<unsigned>(chunks.size());
    bufferedChunks_.erase(it);
    for (unsigned i = 0; i < chunks.size(); ++i)
        launchChunk(obj, i, chunks[i], now);
}

JanusFrontend::EntryList::iterator
JanusFrontend::findForWrite(Addr line_addr, const CacheLine &data)
{
    auto addr_it = byAddr_.find(line_addr);
    if (addr_it != byAddr_.end()) {
        // Several pre-executions may target the same line (separate
        // pre-objects covering overlapping ranges, or a flag toggled
        // twice in one transaction). Prefer a snapshot that matches
        // the data actually written, then the most-complete entry.
        EntryList::iterator best = addr_it->second;
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (!it->lineAddr || *it->lineAddr != line_addr)
                continue;
            bool it_match = it->data && *it->data == data;
            bool best_match = best->data && *best->data == data;
            if (it_match != best_match) {
                if (it_match)
                    best = it;
                continue;
            }
            if (it->exec.completedCount() >
                best->exec.completedCount())
                best = it;
        }
        return best;
    }
    // Address-less data-only entries are matched by content (a CAM
    // over the Data field at line granularity).
    return std::find_if(entries_.begin(), entries_.end(),
                        [&](const IrbEntry &e) {
                            return !e.lineAddr && e.data &&
                                   *e.data == data;
                        });
}

ConsumeResult
JanusFrontend::consume(Addr line_addr, const CacheLine &data, Tick now,
                       ExecProvenance *prov)
{
    purgeOpQueue(now);
    expireEntries(now);

    ConsumeResult result;
    auto it = findForWrite(line_addr, data);
    if (it == entries_.end()) {
        ++irbMisses_;
        JANUS_TRACE_INSTANT(tracer_, track_, irbMissLabel_, now,
                            line_addr);
        result.ready = now;
        return result;
    }

    IrbEntry &entry = *it;
    result.hadEntry = true;
    ++consumedWithEntry_;
    ++irbHits_;
    JANUS_TRACE_INSTANT(tracer_, track_, irbHitLabel_, now,
                        line_addr);

    Tick ready = now + config_.irbLookupLatency;

    // Rule 2a: stale data snapshot -> data-dependent results invalid.
    if (entry.data && !(*entry.data == data)) {
        ++dataMismatches_;
        result.dataMismatch = true;
        for (SubOpId id = 0; id < engine_.graph().size(); ++id)
            if (hasInput(engine_.graph().required(id),
                         ExternalInput::Data))
                entry.exec.invalidate(id);
        entry.data = data;
    } else if (entry.dedupProbed &&
               backend_.peekDedup(entry.data ? *entry.data : data) !=
                   entry.dedupPeek) {
        // Rule 2b: the metadata the dedup lookup observed changed
        // underneath the pre-executed result. Only the lookup's
        // dependents are stale — the fingerprint (D1) is a pure
        // function of the data and stays valid.
        ++metadataInvalidations_;
        result.metadataInvalidated = true;
        const BmoGraph &graph = engine_.graph();
        if (graph.hasSubOp("D2"))
            for (SubOpId id : graph.dependentsOf(graph.idOf("D2")))
                entry.exec.invalidate(id);
    }

    entry.lineAddr = line_addr;
    entry.data = data;

    // Whatever survived invalidation is pre-executed work this write
    // does not have to repeat.
    preexecCoveredSubOps_ += entry.exec.completedCount();

    bool fully = entry.exec.allDone() && entry.exec.lastFinish() <= now;
    result.fullyPreExecuted = fully;
    if (fully)
        ++consumedFullyPreExecuted_;

    const std::vector<Tick> *override_lat = integrityOverride(
        entry, ExternalInput::Both, /*mark_epoch=*/true);
    Tick exec_done =
        engine_.execute(entry.exec, ExternalInput::Both, ready,
                        BmoExecMode::Parallel, override_lat, prov);
    result.ready = std::max(exec_done, entry.exec.lastFinish());
    result.ready = std::max(result.ready, ready);

    eraseEntry(it);
    // Any other entry targeting this line is now dead: the write it
    // anticipated has happened.
    for (auto stale = entries_.begin(); stale != entries_.end();) {
        auto next_it = std::next(stale);
        if (stale->lineAddr && *stale->lineAddr == line_addr)
            eraseEntry(stale);
        stale = next_it;
    }
    irbOccupancy_.set(static_cast<double>(entries_.size()), now);
    return result;
}

void
JanusFrontend::flushThread(std::uint16_t thread_id)
{
    for (auto it = entries_.begin(); it != entries_.end();) {
        auto next = std::next(it);
        if (it->obj.threadId == thread_id)
            eraseEntry(it);
        it = next;
    }
    for (auto it = bufferedChunks_.begin();
         it != bufferedChunks_.end();) {
        if (it->first.threadId == thread_id) {
            bufferedCount_ -= static_cast<unsigned>(it->second.size());
            it = bufferedChunks_.erase(it);
        } else {
            ++it;
        }
    }
}

void
JanusFrontend::reset()
{
    entries_.clear();
    byAddr_.clear();
    opQueue_.clear();
    bufferedChunks_.clear();
    bufferedCount_ = 0;
    irbOccupancy_.set(0.0, 0);
}

void
JanusFrontend::flushRange(Addr base, Addr size)
{
    for (auto it = entries_.begin(); it != entries_.end();) {
        auto next = std::next(it);
        if (it->lineAddr && *it->lineAddr >= base &&
            *it->lineAddr < base + size)
            eraseEntry(it);
        it = next;
    }
}

} // namespace janus
