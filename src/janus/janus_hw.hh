/**
 * @file
 * The Janus hardware front-end at the memory controller (paper
 * Section 4.3, Figure 7): the Pre-execution Request Queue, the
 * decoder to cache-line-sized operations, the Pre-execution
 * Operation Queue, the Intermediate Result Buffer (IRB) and the
 * glue that drives the optimized (parallelized) BMO processing
 * logic for pre-execution requests.
 *
 * Correctness rules implemented exactly as required by Section 3.2:
 *  1. pre-execution never touches processor/memory state — results
 *     live only in the IRB (functional effects happen at persist);
 *  2. stale results are invalidated — by data-snapshot comparison
 *     when the real write arrives, and by re-probing the dedup
 *     metadata (a metadata change between pre-execution and consume
 *     invalidates the data-dependent sub-operations).
 * Queue/buffer overflow and entry aging drop requests, which is
 * always performance-neutral-or-worse but never incorrect.
 */

#ifndef JANUS_JANUS_JANUS_HW_HH
#define JANUS_JANUS_JANUS_HW_HH

#include <algorithm>
#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bmo/backend_state.hh"
#include "bmo/bmo_engine.hh"
#include "common/cacheline.hh"
#include "common/types.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace janus
{

/** Software-assigned identity of a pre-execution object (Table 2). */
struct PreObjId
{
    std::uint16_t preId = 0;
    std::uint16_t threadId = 0;
    std::uint16_t transactionId = 0;

    bool
    operator==(const PreObjId &o) const
    {
        return preId == o.preId && threadId == o.threadId &&
               transactionId == o.transactionId;
    }

    bool
    operator<(const PreObjId &o) const
    {
        if (preId != o.preId)
            return preId < o.preId;
        if (threadId != o.threadId)
            return threadId < o.threadId;
        return transactionId < o.transactionId;
    }
};

/**
 * One decoded cache-line-granularity pre-execution operation: an
 * optional destination line and an optional snapshot of the line's
 * expected content.
 */
struct PreChunk
{
    std::optional<Addr> lineAddr;
    std::optional<CacheLine> data;
    /**
     * For deferred (buffered) requests: which bytes of @ref data are
     * the new bytes this request contributes. Coalescing overlays
     * these ranges so multiple buffered field updates to one line
     * merge into a single correct prediction (paper Figure 8b).
     * patchSize == 0 means the whole line is authoritative.
     */
    unsigned patchOffset = 0;
    unsigned patchSize = 0;
};

/** Sizing and latency parameters (Table 3 defaults, per core). */
struct JanusHwConfig
{
    unsigned requestQueueEntries = 16;
    unsigned opQueueEntries = 64;
    unsigned irbEntries = 64;
    Tick decodeLatency = 2 * ticks::ns;
    Tick irbLookupLatency = 2 * ticks::ns;
    /** Age limit after which an unused IRB entry is discarded. */
    Tick maxEntryAge = 100 * ticks::us;
};

/** What the memory controller learns when a real write consumes
 *  pre-execution state. */
struct ConsumeResult
{
    /** Tick at which all BMO results for this write are available. */
    Tick ready = 0;
    /** An IRB entry matched this write. */
    bool hadEntry = false;
    /** All sub-ops were complete before the write arrived. */
    bool fullyPreExecuted = false;
    /** The data snapshot mismatched the written data. */
    bool dataMismatch = false;
    /** A metadata change invalidated the dedup pre-execution. */
    bool metadataInvalidated = false;
};

/**
 * The Janus hardware front-end. Shared by all cores of a memory
 * controller; per-core capacity is multiplied in by the system
 * builder.
 */
class JanusFrontend
{
  public:
    JanusFrontend(const JanusHwConfig &config, BmoEngine &engine,
                  const BmoBackendState &backend);

    /**
     * Immediate-execution request (PRE_BOTH / PRE_ADDR / PRE_DATA /
     * PRE_BOTH_VAL after API-level decode): decode chunks and start
     * their eligible sub-operations right away.
     */
    void issueImmediate(const PreObjId &obj,
                        const std::vector<PreChunk> &chunks, Tick now);

    /**
     * Deferred-execution request (PRE_*_BUF): park chunks in the
     * request queue; chunks addressed to the same line coalesce.
     */
    void buffer(const PreObjId &obj, const std::vector<PreChunk> &chunks,
                Tick now);

    /** PRE_START_BUF: decode and launch everything buffered for obj. */
    void startBuffered(const PreObjId &obj, Tick now);

    /**
     * A real write for line_addr with the given data arrived at the
     * memory controller. Matches an IRB entry (by address, or by
     * content for address-less data-only entries), validates
     * freshness, schedules whatever still needs to run, and retires
     * the entry. When @p prov is given, nodes scheduled *now* are
     * recorded there (pre-executed nodes are not: time spent waiting
     * on them is in-flight pre-execution by definition).
     */
    ConsumeResult consume(Addr line_addr, const CacheLine &data,
                          Tick now, ExecProvenance *prov = nullptr);

    /** Discard all entries belonging to a terminated thread. */
    void flushThread(std::uint16_t thread_id);

    /**
     * Discard every IRB entry, queued op and buffered request (e.g.
     * crash recovery: the IRB is volatile, so every pre-executed
     * result is invalid after a restart). Statistics are preserved.
     */
    void reset();

    /** Discard entries in [base, base+size) (e.g., page swap-out). */
    void flushRange(Addr base, Addr size);

    /**
     * Disable pre-execution until @p until (resilience layer: an IRB
     * ECC fault makes the whole volatile buffer suspect). While
     * disabled, incoming pre-execution requests are dropped and
     * consuming writes bypass the IRB.
     */
    void disableUntil(Tick until)
    {
        preExecDisabledUntil_ = std::max(preExecDisabledUntil_, until);
    }

    /** Is pre-execution currently disabled? */
    bool disabled(Tick now) const
    {
        return now < preExecDisabledUntil_;
    }

    /** Does an IRB entry exist for this line address? */
    bool hasEntryFor(Addr line_addr) const
    {
        return byAddr_.find(line_addr) != byAddr_.end();
    }

    unsigned irbOccupancy() const
    {
        return static_cast<unsigned>(entries_.size());
    }

    // --- statistics -----------------------------------------------
    std::uint64_t requestsIssued() const { return requestsIssued_; }
    std::uint64_t chunksPreExecuted() const { return chunksPreExecuted_; }
    std::uint64_t droppedOpQueue() const { return droppedOpQueue_; }
    std::uint64_t droppedIrb() const { return droppedIrb_; }
    std::uint64_t droppedRequestQueue() const
    {
        return droppedRequestQueue_;
    }
    std::uint64_t dataMismatches() const { return dataMismatches_; }
    std::uint64_t metadataInvalidations() const
    {
        return metadataInvalidations_;
    }
    std::uint64_t agedOut() const { return agedOut_; }
    /** Pre-execution requests dropped while disabled. */
    std::uint64_t droppedDisabled() const { return droppedDisabled_; }
    std::uint64_t consumedWithEntry() const { return consumedWithEntry_; }
    std::uint64_t consumedFullyPreExecuted() const
    {
        return consumedFullyPreExecuted_;
    }

    /** Consumed writes that found a (valid-or-not) IRB entry. */
    std::uint64_t irbHits() const { return irbHits_; }
    /** Consumed writes with no matching IRB entry. */
    std::uint64_t irbMisses() const { return irbMisses_; }
    /** Sub-ops whose pre-executed result survived validation and was
     *  reused by a consuming write (Figure-11-style coverage). */
    std::uint64_t preexecCoveredSubOps() const
    {
        return preexecCoveredSubOps_;
    }

    /** IRB occupancy over time (time-weighted utilization). */
    const TimeWeightedGauge &irbOccupancyGauge() const
    {
        return irbOccupancy_;
    }

    /** Attach a trace sink (null detaches). */
    void setTracer(Tracer *tracer);

    const JanusHwConfig &config() const { return config_; }

  private:
    struct IrbEntry
    {
        PreObjId obj;
        unsigned chunk = 0;
        std::optional<Addr> lineAddr;
        std::optional<CacheLine> data;
        /** Dedup target observed at pre-execution time, if probed. */
        std::optional<std::uint64_t> dedupPeek;
        bool dedupProbed = false;
        BmoExecState exec;
        Tick created = 0;
    };

    using EntryList = std::list<IrbEntry>;

    /** Launch eligible sub-ops for one chunk; allocates/updates IRB. */
    void launchChunk(const PreObjId &obj, unsigned chunk_index,
                     const PreChunk &chunk, Tick now);

    /** Run whatever newly became eligible for an entry. */
    void executeEligible(IrbEntry &entry, Tick now);

    /**
     * Streamlined-integrity latency override for an entry whose
     * tree updates (I1..) are about to be scheduled with @p avail
     * inputs: probe the tree-node cache / epoch state and map each
     * level to its hit/miss/coalesce latency. Returns nullptr when
     * the engine call won't schedule tree updates (no address, I1
     * ineligible or already done) or streamlining is off.
     * Pre-execution probes pass @p mark_epoch = false: their
     * results land in the IRB, not the tree's write queue.
     */
    const std::vector<Tick> *integrityOverride(const IrbEntry &entry,
                                               ExternalInput avail,
                                               bool mark_epoch);

    /** Reclaim op-queue slots whose sub-ops have finished. */
    void purgeOpQueue(Tick now);

    /** Drop entries older than the age limit. */
    void expireEntries(Tick now);

    /** Locate the IRB entry matching a write. */
    EntryList::iterator findForWrite(Addr line_addr,
                                     const CacheLine &data);

    /** Locate an entry by (obj, chunk). */
    EntryList::iterator findByObj(const PreObjId &obj, unsigned chunk);

    void eraseEntry(EntryList::iterator it);

    JanusHwConfig config_;
    BmoEngine &engine_;
    const BmoBackendState &backend_;

    /** Integrity sub-ops with their tree level (I3 -> level 3). */
    std::vector<std::pair<SubOpId, unsigned>> integrityLevels_;
    /** Reused per-call latency override (streamlined integrity). */
    std::vector<Tick> latencyOverride_;

    EntryList entries_;
    std::unordered_map<Addr, EntryList::iterator> byAddr_;
    /** Completion ticks of decoded ops occupying the op queue. */
    std::vector<Tick> opQueue_;
    /** Buffered (deferred) chunks per object, oldest object first. */
    std::list<std::pair<PreObjId, std::vector<PreChunk>>>
        bufferedChunks_;
    unsigned bufferedCount_ = 0;

    std::uint64_t requestsIssued_ = 0;
    std::uint64_t chunksPreExecuted_ = 0;
    std::uint64_t droppedOpQueue_ = 0;
    std::uint64_t droppedIrb_ = 0;
    std::uint64_t droppedRequestQueue_ = 0;
    std::uint64_t dataMismatches_ = 0;
    std::uint64_t metadataInvalidations_ = 0;
    std::uint64_t agedOut_ = 0;
    std::uint64_t droppedDisabled_ = 0;
    Tick preExecDisabledUntil_ = 0;
    std::uint64_t consumedWithEntry_ = 0;
    std::uint64_t consumedFullyPreExecuted_ = 0;
    std::uint64_t irbHits_ = 0;
    std::uint64_t irbMisses_ = 0;
    std::uint64_t preexecCoveredSubOps_ = 0;
    TimeWeightedGauge irbOccupancy_;

    Tracer *tracer_ = nullptr;
    TraceId track_ = 0;
    TraceId irbHitLabel_ = 0;
    TraceId irbMissLabel_ = 0;
    TraceId chunkLabel_ = 0;
};

} // namespace janus

#endif // JANUS_JANUS_JANUS_HW_HH
