#include "txn/undo_log.hh"

#include "common/logging.hh"
#include "ir/builder.hh"

namespace janus
{

void
buildTxnLibrary(Module &module)
{
    IrBuilder b(module);

    // undo_append(ctx, addr, size): append a backup entry; the
    // caller fences before mutating [addr, addr+size).
    //
    // Writeback order is the crash-consistency invariant: payload
    // first, then the next slot's terminator zero, then this entry's
    // header. The write queue accepts lines in issue order, so a
    // durable header implies a durable payload and a durable scan
    // terminator behind it.
    {
        b.beginFunction("undo_append", 3);
        int ctx_reg = b.arg(0);
        int addr = b.arg(1);
        int sz = b.arg(2);

        int log = b.load(ctx_reg, ctx::logBase);
        int tail = b.load(ctx_reg, ctx::logTail);
        int entry = b.addI(b.add(log, tail), logHeaderBytes);
        b.store(entry, addr, 0);
        b.store(entry, sz, 8);
        int payload = b.addI(entry, logEntryHeaderBytes);
        b.memCpyR(payload, addr, sz);

        // footprint = header line + line-aligned payload.
        int rounded = b.addI(sz, lineBytes - 1);
        int mask = b.constI(
            static_cast<std::int64_t>(~Addr(lineBytes - 1)));
        rounded = b.andOp(rounded, mask);
        int footprint = b.addI(rounded, logEntryHeaderBytes);

        b.clwbR(payload, rounded); // payload lines first

        // Scan terminator: zero the next header's addr word so
        // recovery never walks into stale entries. Skipped when the
        // slot is already (durably, by induction) zero.
        int next = b.add(entry, footprint);
        int stale = b.load(next, 0);
        int zero = b.constI(0);
        unsigned zero_block = b.newBlock();
        unsigned hdr_block = b.newBlock();
        int need = b.cmpNe(stale, zero);
        b.brCond(need, zero_block, hdr_block);

        b.setBlock(zero_block);
        b.store(next, zero, 0);
        b.clwb(next, 8);
        b.br(hdr_block);

        b.setBlock(hdr_block);
        b.clwb(entry, 8); // header line last

        int new_tail = b.add(tail, footprint);
        b.store(ctx_reg, new_tail, ctx::logTail);
        b.ret();
        b.endFunction();
    }

    // tx_finish(ctx): commit by cutting the scan short — zero the
    // current lane's first header addr word. This immediately
    // changes crash-consistency status, so it uses the selective
    // metadata-atomic persist (Section 4.3). Then rotate lanes.
    {
        b.beginFunction("tx_finish", 1);
        int ctx_reg = b.arg(0);
        int log = b.load(ctx_reg, ctx::logBase);
        int lane = b.load(ctx_reg, ctx::logLane);
        int first = b.add(
            log, b.addI(b.mulI(lane, logLaneBytes), logHeaderBytes));
        int zero = b.constI(0);
        b.store(first, zero, 0);
        b.clwb(first, 8, /*meta_atomic=*/true);
        b.sfence();
        int next_lane = b.andOp(b.addI(lane, 1),
                                b.constI(logLanes - 1));
        b.store(ctx_reg, next_lane, ctx::logLane);
        b.store(ctx_reg, b.mulI(next_lane, logLaneBytes),
                ctx::logTail);
        b.ret();
        b.endFunction();
    }
}

int
emitLaneFirstEntry(IrBuilder &b, int ctx_reg)
{
    int log = b.load(ctx_reg, ctx::logBase);
    int lane = b.load(ctx_reg, ctx::logLane);
    return b.add(log, b.addI(b.mulI(lane, logLaneBytes),
                             logHeaderBytes));
}

void
emitCommitPre(IrBuilder &b, int ctx_reg)
{
    int pc = b.preInit();
    b.preBothVal(pc, emitLaneFirstEntry(b, ctx_reg), b.constI(0));
}

std::vector<UndoEntry>
parseUndoLog(const SparseMemory &image, Addr log_base)
{
    // At most one lane can be non-empty: tx_finish durably zeroes a
    // lane's first header before the next transaction begins.
    std::vector<UndoEntry> entries;
    unsigned live_lanes = 0;
    for (unsigned lane = 0; lane < logLanes; ++lane) {
        Addr offset = logHeaderBytes + lane * logLaneBytes;
        bool lane_live = false;
        for (;;) {
            Addr entry = log_base + offset;
            Addr dest = image.readWord(entry);
            if (dest == 0)
                break;
            if (!lane_live) {
                lane_live = true;
                janus_assert(++live_lanes == 1,
                             "two uncommitted log lanes");
            }
            UndoEntry e;
            e.dest = dest;
            e.size = image.readWord(entry + 8);
            janus_assert(e.size > 0 && e.size <= (1u << 20),
                         "implausible undo entry size %llu",
                         static_cast<unsigned long long>(e.size));
            e.oldData.resize(e.size);
            image.read(entry + logEntryHeaderBytes, e.oldData.data(),
                       static_cast<unsigned>(e.size));
            entries.push_back(std::move(e));
            offset += logEntryFootprint(e.size);
        }
    }
    return entries;
}

unsigned
recoverUndoLog(SparseMemory &image, Addr log_base)
{
    std::vector<UndoEntry> entries = parseUndoLog(image, log_base);
    // Newest first: later entries may shadow earlier ones.
    for (auto it = entries.rbegin(); it != entries.rend(); ++it)
        image.write(it->dest, it->oldData.data(),
                    static_cast<unsigned>(it->size));
    for (unsigned lane = 0; lane < logLanes; ++lane)
        image.writeWord(log_base + logHeaderBytes +
                            lane * logLaneBytes,
                        0);
    return static_cast<unsigned>(entries.size());
}

} // namespace janus
