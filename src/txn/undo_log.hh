/**
 * @file
 * Undo-log transaction runtime (paper Section 2.1): PmIR library
 * functions every workload kernel links against, plus the native
 * recovery procedure used by the crash-consistency tests.
 *
 * Log layout (one region per hart) — scan-based, no persistent tail:
 *   line 0      reserved
 *   from +64    entries, each: one header line { destAddr(8) |
 *               size(8) | pad } followed by line-aligned old data
 *
 * Protocol per transaction:
 *   1. undo_append(ctx, addr, size) for every region about to
 *      change: append an entry, zero the *next* header's addr word
 *      (the scan terminator), clwb — then ONE sfence in the caller
 *      closes the backup step;
 *   2. in-place updates + clwb + sfence          (update step);
 *   3. tx_finish(ctx): zero the first entry's addr word with a
 *      metadata-atomic persist                   (commit step).
 *
 * Recovery scans entries while the header addr word is nonzero; a
 * nonempty scan means the transaction did not commit, and every
 * logged entry is copied back, newest first. The volatile append
 * cursor lives in the context block (ctx::logTail); it is never
 * needed for recovery.
 *
 * The commit write touches a line whose content is stable after the
 * last undo_log call, which is what makes it pre-executable with
 * PRE_BOTH_VAL (paper Figure 4: "the address and data for the
 * commit are known before the commit step").
 */

#ifndef JANUS_TXN_UNDO_LOG_HH
#define JANUS_TXN_UNDO_LOG_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "ir/ir.hh"
#include "mem/sparse_memory.hh"

namespace janus
{

/** Offsets inside the per-hart context block (arg0 of kernels). */
namespace ctx
{
constexpr Addr logBase = 0;   ///< address of the hart's log region
constexpr Addr heap = 8;      ///< workload structure base
constexpr Addr scratch = 16;  ///< volatile staging area
constexpr Addr param1 = 24;   ///< workload parameter (e.g. item size)
constexpr Addr param2 = 32;   ///< workload parameter
constexpr Addr pool = 40;     ///< value-pool base
constexpr Addr aux = 48;      ///< workload-specific block
constexpr Addr logTail = 56;  ///< volatile log append cursor
constexpr Addr logLane = 64;  ///< volatile current log lane
constexpr Addr size = 128;    ///< bytes to allocate for a context
} // namespace ctx

/** Offset of the first lane inside a log region. */
constexpr Addr logHeaderBytes = 64;

/**
 * The log is striped over lanes used round-robin, one transaction
 * per lane. This spreads the per-transaction header/commit lines
 * over the NVM banks (a single fixed header line would otherwise
 * hotspot one bank at two writes per transaction).
 */
constexpr unsigned logLanes = 8;
constexpr Addr logLaneBytes = 32 * 1024;

/** Total bytes to allocate for one hart's log region. */
constexpr Addr logRegionBytes = logHeaderBytes +
                                logLanes * logLaneBytes;

/** Offset of the payload within one entry (after its header line). */
constexpr Addr logEntryHeaderBytes = 64;

/** Line-aligned footprint of an entry backing `size` bytes. */
constexpr Addr
logEntryFootprint(Addr size)
{
    return logEntryHeaderBytes +
           ((size + lineBytes - 1) & ~Addr(lineBytes - 1));
}

/**
 * Emit the transaction runtime into a module:
 *   undo_append(ctx, addr, size)  — fence-free backup append;
 *   tx_finish(ctx)                — commit (truncate the scan) and
 *                                   advance to the next lane.
 * Callers issue one sfence after their last undo_append to close
 * the backup step.
 */
void buildTxnLibrary(Module &module);

class IrBuilder;

/**
 * Emit the manual pre-execution of the upcoming commit write (the
 * zeroing of the current lane's first header word), valid once the
 * transaction's last undo_append has run (paper Figure 4).
 */
void emitCommitPre(IrBuilder &b, int ctx_reg);

/** Emit a register holding the current lane's first-entry address. */
int emitLaneFirstEntry(IrBuilder &b, int ctx_reg);

/** One decoded undo-log entry (used by recovery and tests). */
struct UndoEntry
{
    Addr dest;
    std::uint64_t size;
    std::vector<std::uint8_t> oldData;
};

/** Parse the live entries of a log region inside an image. */
std::vector<UndoEntry> parseUndoLog(const SparseMemory &image,
                                    Addr log_base);

/**
 * Roll back an uncommitted transaction in a crash image: apply the
 * logged old values newest-first and truncate the log.
 *
 * @return number of entries rolled back (0 if the log was clean).
 */
unsigned recoverUndoLog(SparseMemory &image, Addr log_base);

} // namespace janus

#endif // JANUS_TXN_UNDO_LOG_HH
