/**
 * @file
 * B-Tree (Table 4): a fixed-shape B-tree (two internal levels, 64
 * leaves of up to 7 keys) with durable leaf upserts. Inserts shift
 * the leaf's key/value arrays, so each transaction moves a larger
 * update payload than the pointer workloads — the reason B-Tree
 * gains more from pre-execution in the paper's Figure 9 and keeps
 * scaling with BMO resources in Figure 14.
 */

#ifndef JANUS_WORKLOADS_B_TREE_HH
#define JANUS_WORKLOADS_B_TREE_HH

#include <unordered_map>

#include "workloads/workload.hh"

namespace janus
{

/** See file comment. */
class BTreeWorkload : public Workload
{
  public:
    explicit BTreeWorkload(const WorkloadParams &params)
        : Workload(params)
    {}

    std::string name() const override { return "b_tree"; }
    void buildKernels(Module &module, bool manual) const override;
    void setupCore(unsigned core, NvmSystem &system) override;
    bool next(unsigned core, SparseMemory &mem, std::string &fn,
              std::vector<std::uint64_t> &args) override;
    void validate(const SparseMemory &mem,
                  unsigned core) const override;
    void validateRecovered(const SparseMemory &mem,
                           unsigned core) const override;

    static constexpr unsigned fanout = 8;     ///< children per inner
    static constexpr unsigned leafCap = 7;    ///< keys per leaf
    static constexpr unsigned numLeaves = 64; ///< fanout^2

  private:
    Addr leafAddr(unsigned core, unsigned leaf) const;

    struct CoreTree
    {
        Addr root = 0;
        Addr mids = 0;
        Addr leaves = 0;
        std::unordered_map<std::uint64_t, std::uint64_t> mirror;
        std::unordered_map<std::uint64_t,
                           std::vector<std::uint64_t>> history;
        std::vector<unsigned> occupancy;
    };
    std::vector<CoreTree> trees_;
};

} // namespace janus

#endif // JANUS_WORKLOADS_B_TREE_HH
