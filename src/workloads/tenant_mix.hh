/**
 * @file
 * Mixed-tenant service workload for the overload-robustness studies:
 * four co-running traffic classes — a log writer (append-heavy,
 * latency-tolerant), a page flusher (bulk multi-line persists), and
 * random / sequential readers (latency-critical probes with a tiny
 * cursor persist) — mapped onto cores round-robin (core % 4).
 *
 * Every transaction's persistent effect depends only on (core, slot),
 * never on *when* or *whether* earlier transactions ran, so the
 * workload is shed-tolerant by construction: under open-loop drive
 * with admission control, any subset of the scheduled transactions
 * may have been shed or rejected and validation still holds (each
 * slot is either untouched or carries exactly its expected value).
 */

#ifndef JANUS_WORKLOADS_TENANT_MIX_HH
#define JANUS_WORKLOADS_TENANT_MIX_HH

#include "memctrl/qos.hh"
#include "workloads/workload.hh"

namespace janus
{

/** Traffic-class roles, assigned per core as core % 4. */
enum class TenantRole : std::uint8_t
{
    RandomReader,     ///< tenant 0, priority 0 (most protected)
    SequentialReader, ///< tenant 1, priority 0
    PageFlusher,      ///< tenant 2, priority 1
    LogWriter,        ///< tenant 3, priority 2 (shed first)
};

/** Role of a core under the fixed round-robin mapping. */
inline TenantRole
tenantMixRole(unsigned core)
{
    return static_cast<TenantRole>(core % 4);
}

/**
 * The canonical QoS tenant table for this mix: four tenants named
 * after the roles, tenantOfCore = core % 4, readers priority 0,
 * flusher 1, logger 2. Shaping is configured by the caller
 * (shapeIntervalTicks == 0 leaves a tenant unshaped).
 */
QosConfig tenantMixQos();

/** See file comment. */
class TenantMixWorkload : public Workload
{
  public:
    explicit TenantMixWorkload(const WorkloadParams &params)
        : Workload(params)
    {}

    std::string name() const override { return "tenant_mix"; }
    void buildKernels(Module &module, bool manual) const override;
    void setupCore(unsigned core, NvmSystem &system) override;
    bool next(unsigned core, SparseMemory &mem, std::string &fn,
              std::vector<std::uint64_t> &args) override;
    void validate(const SparseMemory &mem,
                  unsigned core) const override;
    void validateRecovered(const SparseMemory &mem,
                           unsigned core) const override;

    /** Log-record line slots a writer core cycles through. */
    static constexpr unsigned logSlots = 256;
    /** Flusher pages per core and lines per page. */
    static constexpr unsigned flushPages = 16;
    static constexpr unsigned pageLines = 4;
    /** Reader probe region in lines. */
    static constexpr unsigned readLines = 64;
    /** Probes per reader transaction. */
    static constexpr unsigned probesPerTxn = 4;

  private:
    /** Expected first word of a persisted line slot. */
    static std::uint64_t slotWord(unsigned core, std::uint64_t slot);

    /** Check one line: all-zero (never persisted) or base+w words. */
    void checkLine(const SparseMemory &mem, Addr line, unsigned core,
                   std::uint64_t base, const char *what) const;

    /** Per-core sequential-reader cursor (volatile bookkeeping). */
    std::vector<std::uint64_t> seqPos_;
    /** Per-core transaction sequence number (slot selection). */
    std::vector<std::uint64_t> seq_;
};

} // namespace janus

#endif // JANUS_WORKLOADS_TENANT_MIX_HH
