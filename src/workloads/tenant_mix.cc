#include "workloads/tenant_mix.hh"

#include "common/logging.hh"
#include "ir/builder.hh"

namespace janus
{

QosConfig
tenantMixQos()
{
    QosConfig qos;
    qos.enabled = true;
    QosTenant rand_reader;
    rand_reader.name = "rand_reader";
    rand_reader.priority = 0;
    QosTenant seq_reader;
    seq_reader.name = "seq_reader";
    seq_reader.priority = 0;
    QosTenant flusher;
    flusher.name = "page_flusher";
    flusher.priority = 1;
    QosTenant logger;
    logger.name = "log_writer";
    logger.priority = 2;
    qos.tenants = {rand_reader, seq_reader, flusher, logger};
    // tenantOfCore empty: core % 4 matches tenantMixRole exactly.
    return qos;
}

void
TenantMixWorkload::buildKernels(Module &module, bool manual) const
{
    // The mix studies controller-side QoS, not pre-execution: both
    // instrumentation flavors build the identical plain kernels.
    (void)manual;
    IrBuilder b(module);

    // tm_persist_line(addr, v): persist one line filled with v..v+7.
    b.beginFunction("tm_persist_line", 2);
    {
        int addr = b.arg(0);
        int v = b.arg(1);
        for (unsigned w = 0; w < lineBytes / 8; ++w)
            b.store(addr, b.addI(v, w), 8 * w);
        b.clwb(addr, lineBytes);
        b.sfence();
        b.ret();
    }
    b.endFunction();

    // tm_persist_page(addr, v): persist pageLines consecutive lines
    // (one bulk flush); line l is filled with (v + (l<<8)) + w.
    b.beginFunction("tm_persist_page", 2);
    {
        int addr = b.arg(0);
        int v = b.arg(1);
        for (unsigned l = 0; l < pageLines; ++l) {
            int la = b.addI(addr, l * lineBytes);
            int lv = b.addI(v, std::int64_t(l) << 8);
            for (unsigned w = 0; w < lineBytes / 8; ++w)
                b.store(la, b.addI(lv, w), 8 * w);
            b.clwb(la, lineBytes);
        }
        b.sfence();
        b.ret();
    }
    b.endFunction();

    // tm_probe(a0, a1, a2, a3, cur, v): four dependent-free reads
    // followed by a one-line cursor persist (the reader's only write
    // — constant per core, so replays are idempotent).
    b.beginFunction("tm_probe", 2 + probesPerTxn);
    {
        for (unsigned p = 0; p < probesPerTxn; ++p)
            b.load(b.arg(p));
        int cur = b.arg(probesPerTxn);
        int v = b.arg(probesPerTxn + 1);
        for (unsigned w = 0; w < lineBytes / 8; ++w)
            b.store(cur, b.addI(v, w), 8 * w);
        b.clwb(cur, lineBytes);
        b.sfence();
        b.ret();
    }
    b.endFunction();
}

std::uint64_t
TenantMixWorkload::slotWord(unsigned core, std::uint64_t slot)
{
    // Depends only on (core, slot): wraps and replays rewrite the
    // identical value, sheds simply leave the slot untouched.
    return (std::uint64_t(core + 1) << 40) ^ (slot << 16) ^ 0x7153;
}

void
TenantMixWorkload::setupCore(unsigned core, NvmSystem &system)
{
    Addr heap_bytes = 0;
    switch (tenantMixRole(core)) {
      case TenantRole::RandomReader:
      case TenantRole::SequentialReader:
        heap_bytes = Addr(readLines) * lineBytes;
        break;
      case TenantRole::PageFlusher:
        heap_bytes = Addr(flushPages) * pageLines * lineBytes;
        break;
      case TenantRole::LogWriter:
        heap_bytes = Addr(logSlots) * lineBytes;
        break;
    }
    CoreState &cs =
        allocCommon(core, system, heap_bytes, lineBytes, lineBytes);

    if (seqPos_.size() <= core) {
        seqPos_.resize(core + 1, 0);
        seq_.resize(core + 1, 0);
    }
    seqPos_[core] = 0;
    seq_[core] = 0;

    // Reader probe regions hold recognizable contents so validation
    // can assert the probes never wrote there.
    TenantRole role = tenantMixRole(core);
    if (role == TenantRole::RandomReader ||
        role == TenantRole::SequentialReader) {
        SparseMemory &mem = system.mem();
        for (unsigned l = 0; l < readLines; ++l)
            for (unsigned w = 0; w < lineBytes / 8; ++w)
                mem.writeWord(cs.heap + Addr(l) * lineBytes + 8 * w,
                              slotWord(core, 0x8000u + l) + w);
        warmRegion(system, core, cs.heap, heap_bytes);
    }
}

bool
TenantMixWorkload::next(unsigned core, SparseMemory &mem,
                        std::string &fn,
                        std::vector<std::uint64_t> &args)
{
    (void)mem;
    CoreState &cs = cores_.at(core);
    if (cs.txnsLeft == 0)
        return false;
    --cs.txnsLeft;
    const std::uint64_t seq = seq_[core]++;

    switch (tenantMixRole(core)) {
      case TenantRole::RandomReader: {
          fn = "tm_probe";
          args.clear();
          for (unsigned p = 0; p < probesPerTxn; ++p)
              args.push_back(cs.heap +
                             Addr(cs.rng.below(readLines)) *
                                 lineBytes);
          args.push_back(cs.scratch);
          args.push_back(slotWord(core, 0));
          return true;
      }
      case TenantRole::SequentialReader: {
          fn = "tm_probe";
          args.clear();
          for (unsigned p = 0; p < probesPerTxn; ++p) {
              args.push_back(cs.heap +
                             Addr(seqPos_[core] % readLines) *
                                 lineBytes);
              ++seqPos_[core];
          }
          args.push_back(cs.scratch);
          args.push_back(slotWord(core, 0));
          return true;
      }
      case TenantRole::PageFlusher: {
          const std::uint64_t page = cs.rng.below(flushPages);
          fn = "tm_persist_page";
          args = {cs.heap + page * pageLines * lineBytes,
                  slotWord(core, page)};
          return true;
      }
      case TenantRole::LogWriter: {
          const std::uint64_t slot = seq % logSlots;
          fn = "tm_persist_line";
          args = {cs.heap + slot * lineBytes, slotWord(core, slot)};
          return true;
      }
    }
    return false;
}

void
TenantMixWorkload::checkLine(const SparseMemory &mem, Addr line,
                             unsigned core, std::uint64_t base,
                             const char *what) const
{
    bool all_zero = true;
    for (unsigned w = 0; w < lineBytes / 8; ++w)
        if (mem.readWord(line + 8 * w) != 0)
            all_zero = false;
    if (all_zero)
        return; // never persisted (shed / not yet reached): legal
    for (unsigned w = 0; w < lineBytes / 8; ++w)
        janus_assert(mem.readWord(line + 8 * w) == base + w,
                     "tenant_mix core %u: %s line %#llx word %u "
                     "corrupt",
                     core, what,
                     static_cast<unsigned long long>(line), w);
}

void
TenantMixWorkload::validate(const SparseMemory &mem,
                            unsigned core) const
{
    const CoreState &cs = cores_.at(core);
    switch (tenantMixRole(core)) {
      case TenantRole::RandomReader:
      case TenantRole::SequentialReader: {
          // Probe region must be exactly its initial contents.
          for (unsigned l = 0; l < readLines; ++l)
              for (unsigned w = 0; w < lineBytes / 8; ++w)
                  janus_assert(
                      mem.readWord(cs.heap + Addr(l) * lineBytes +
                                   8 * w) ==
                          slotWord(core, 0x8000u + l) + w,
                      "tenant_mix core %u: reader clobbered its "
                      "probe region (line %u word %u)",
                      core, l, w);
          checkLine(mem, cs.scratch, core, slotWord(core, 0),
                    "cursor");
          break;
      }
      case TenantRole::PageFlusher: {
          for (unsigned p = 0; p < flushPages; ++p)
              for (unsigned l = 0; l < pageLines; ++l)
                  checkLine(mem,
                            cs.heap +
                                (Addr(p) * pageLines + l) * lineBytes,
                            core,
                            slotWord(core, p) +
                                (std::uint64_t(l) << 8),
                            "page");
          break;
      }
      case TenantRole::LogWriter: {
          for (unsigned s = 0; s < logSlots; ++s)
              checkLine(mem, cs.heap + Addr(s) * lineBytes, core,
                        slotWord(core, s), "log");
          break;
      }
    }
}

void
TenantMixWorkload::validateRecovered(const SparseMemory &mem,
                                     unsigned core) const
{
    // Every persist is slot-idempotent, so any boundary image obeys
    // the same lenient invariant the end-of-run check uses.
    validate(mem, core);
}

} // namespace janus
