#include "workloads/workload.hh"

#include "common/logging.hh"
#include "workloads/array_swap.hh"
#include "workloads/b_tree.hh"
#include "workloads/hash_table.hh"
#include "workloads/queue.hh"
#include "workloads/rb_tree.hh"
#include "workloads/tatp.hh"
#include "workloads/tenant_mix.hh"
#include "workloads/tpcc.hh"
#include "workloads/wal_append.hh"

namespace janus
{

const std::vector<std::string> &
allWorkloadNames()
{
    static const std::vector<std::string> names = {
        "array_swap", "queue", "hash_table", "rb_tree",
        "b_tree", "tatp", "tpcc",
    };
    return names;
}

const std::vector<std::string> &
walWorkloadNames()
{
    static const std::vector<std::string> names = {
        "wal_classic",
        "wal_zero_cached",
        "wal_header_dancing",
        "wal_mnemosyne",
    };
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadParams &params)
{
    if (name == "array_swap")
        return std::make_unique<ArraySwapWorkload>(params);
    if (name == "queue")
        return std::make_unique<QueueWorkload>(params);
    if (name == "hash_table")
        return std::make_unique<HashTableWorkload>(params);
    if (name == "rb_tree")
        return std::make_unique<RbTreeWorkload>(params);
    if (name == "b_tree")
        return std::make_unique<BTreeWorkload>(params);
    if (name == "tatp")
        return std::make_unique<TatpWorkload>(params);
    if (name == "tpcc")
        return std::make_unique<TpccWorkload>(params);
    if (name == "tenant_mix")
        return std::make_unique<TenantMixWorkload>(params);
    if (name == "wal_classic")
        return std::make_unique<WalAppendWorkload>(
            params, LogVariant::Classic);
    if (name == "wal_zero_cached")
        return std::make_unique<WalAppendWorkload>(
            params, LogVariant::ZeroCached);
    if (name == "wal_header_dancing")
        return std::make_unique<WalAppendWorkload>(
            params, LogVariant::HeaderDancing);
    if (name == "wal_mnemosyne")
        return std::make_unique<WalAppendWorkload>(
            params, LogVariant::Mnemosyne);
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace janus
