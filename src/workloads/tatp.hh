/**
 * @file
 * TATP (Table 4): the UPDATE_SUBSCRIBER transaction of the telecom
 * benchmark [64] — update flag and value fields of a random
 * subscriber row. The row address is a direct index computation, so
 * both pre-execution inputs are available at transaction entry; TATP
 * is among the biggest winners in the paper's Figure 9.
 */

#ifndef JANUS_WORKLOADS_TATP_HH
#define JANUS_WORKLOADS_TATP_HH

#include "workloads/workload.hh"

namespace janus
{

/** See file comment. */
class TatpWorkload : public Workload
{
  public:
    explicit TatpWorkload(const WorkloadParams &params,
                          unsigned subscribers = 4096)
        : Workload(params), subscribers_(subscribers)
    {}

    std::string name() const override { return "tatp"; }
    void buildKernels(Module &module, bool manual) const override;
    void setupCore(unsigned core, NvmSystem &system) override;
    bool next(unsigned core, SparseMemory &mem, std::string &fn,
              std::vector<std::uint64_t> &args) override;
    void validate(const SparseMemory &mem,
                  unsigned core) const override;
    void validateRecovered(const SparseMemory &mem,
                           unsigned core) const override;

  private:
    unsigned subscribers_;
    struct Row
    {
        std::uint64_t bits = 0;
        std::uint64_t seed = 0;
    };
    std::vector<std::vector<Row>> mirror_;
    /** Every (bits, seed) pair each row ever held, per core. */
    std::vector<std::vector<std::vector<Row>>> history_;
};

} // namespace janus

#endif // JANUS_WORKLOADS_TATP_HH
