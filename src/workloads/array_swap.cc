#include "workloads/array_swap.hh"

#include <set>

#include "common/logging.hh"
#include "ir/builder.hh"
#include "txn/undo_log.hh"

namespace janus
{

void
ArraySwapWorkload::buildKernels(Module &module, bool manual) const
{
    IrBuilder b(module);
    // array_swap(ctx, i, j): durably swap items i and j.
    b.beginFunction("array_swap", 3);
    int ctx_reg = b.arg(0);
    int i = b.arg(1);
    int j = b.arg(2);
    b.txBegin();
    int heap = b.load(ctx_reg, ctx::heap);
    int size = b.load(ctx_reg, ctx::param1);
    int a = b.add(heap, b.mul(i, size));
    int c = b.add(heap, b.mul(j, size));
    int tmp = b.load(ctx_reg, ctx::scratch);
    b.memCpyR(tmp, a, size); // volatile staging of old item i
    if (manual) {
        // Both addresses and both data sources are already known:
        // pre-execute everything before the backup step (Fig. 3c).
        int p1 = b.preInit();
        b.preBothR(p1, a, c, size);   // item i := old item j
        int p2 = b.preInit();
        b.preBothR(p2, c, tmp, size); // item j := old item i
        // The undo-log payload lines are copies of the old items at
        // statically-known log offsets (the append cursor is always
        // zero at transaction start): pre-execute them as well.
        int entry1 = emitLaneFirstEntry(b, ctx_reg);
        int pay1 = b.addI(entry1, logEntryHeaderBytes);
        int pl1 = b.preInit();
        b.preBothR(pl1, pay1, a, size);
        int rounded = b.addI(size, lineBytes - 1);
        int mask = b.constI(
            static_cast<std::int64_t>(~Addr(lineBytes - 1)));
        rounded = b.andOp(rounded, mask);
        int footprint = b.addI(rounded, logEntryHeaderBytes);
        int pay2 = b.add(pay1, footprint);
        int pl2 = b.preInit();
        b.preBothR(pl2, pay2, c, size);
    }
    b.call("undo_append", {ctx_reg, a, size});
    b.call("undo_append", {ctx_reg, c, size});
    if (manual) {
        // The commit write (tx_finish zeroes the first entry's
        // header word) is fully determined once the last backup is
        // appended: pre-execute it across the backup fence and the
        // update step (Fig. 4).
        emitCommitPre(b, ctx_reg);
    }
    b.sfence(); // backup step complete
    b.memCpyR(a, c, size);
    b.memCpyR(c, tmp, size);
    b.clwbR(a, size);
    b.clwbR(c, size);
    b.sfence();
    b.call("tx_finish", {ctx_reg});
    b.txEnd();
    b.ret();
    b.endFunction();
}

void
ArraySwapWorkload::setupCore(unsigned core, NvmSystem &system)
{
    const Addr item_bytes = params_.valueBytes;
    CoreState &cs =
        allocCommon(core, system, items_ * item_bytes, item_bytes,
                    item_bytes);
    SparseMemory &mem = system.mem();
    mem.writeWord(cs.ctx + ctx::param1, item_bytes);

    if (seeds_.size() <= core) {
        seeds_.resize(core + 1);
        seedsInitial_.resize(core + 1);
    }
    auto &seeds = seeds_[core];
    seeds.assign(items_, 0);
    for (unsigned n = 0; n < items_; ++n) {
        // Honor the duplicate ratio in the initial contents.
        std::uint64_t seed;
        if (n > 0 && cs.rng.chance(params_.dupRatio))
            seed = seeds[cs.rng.below(n)];
        else
            seed = (std::uint64_t(core + 1) << 40) |
                   ++cs.uniqueCounter;
        seeds[n] = seed;
        writeValue(mem, cs.heap + n * item_bytes, seed);
    }
    seedsInitial_[core] = seeds;
}

bool
ArraySwapWorkload::next(unsigned core, SparseMemory &mem,
                        std::string &fn,
                        std::vector<std::uint64_t> &args)
{
    (void)mem;
    CoreState &cs = cores_.at(core);
    if (cs.txnsLeft == 0)
        return false;
    --cs.txnsLeft;
    std::uint64_t i = cs.rng.below(items_);
    std::uint64_t j = cs.rng.below(items_ - 1);
    if (j >= i)
        ++j;
    std::swap(seeds_[core][i], seeds_[core][j]);
    fn = "array_swap";
    args = {cs.ctx, i, j};
    return true;
}

void
ArraySwapWorkload::validateRecovered(const SparseMemory &mem,
                                     unsigned core) const
{
    // Swaps permute the array: at every transaction boundary the
    // multiset of item contents equals the initial multiset.
    const CoreState &cs = cores_.at(core);
    std::multiset<std::string> expect, found;
    for (unsigned n = 0; n < items_; ++n) {
        std::string item;
        for (Addr off = 0; off < params_.valueBytes; off += lineBytes) {
            expect.insert(CacheLine::fromSeed(
                              seedsInitial_[core][n] * 1000003 + off)
                              .toHex());
            found.insert(
                mem.readLine(cs.heap + n * params_.valueBytes + off)
                    .toHex());
        }
        (void)item;
    }
    janus_assert(expect == found,
                 "array_swap core %u: recovered image is not a "
                 "permutation of the initial items", core);
}

void
ArraySwapWorkload::validate(const SparseMemory &mem,
                            unsigned core) const
{
    const CoreState &cs = cores_.at(core);
    for (unsigned n = 0; n < items_; ++n) {
        janus_assert(
            checkValue(mem, cs.heap + n * params_.valueBytes,
                       seeds_[core][n]),
            "array_swap core %u: item %u has wrong value", core, n);
    }
}

} // namespace janus
