#include "workloads/wal_append.hh"

#include <cstring>

#include "common/logging.hh"
#include "txn/undo_log.hh"

namespace janus
{

void
WalAppendWorkload::buildKernels(Module &module, bool manual) const
{
    buildLogWriterKernels(module, variant_, manual);
}

void
WalAppendWorkload::setupCore(unsigned core, NvmSystem &system)
{
    const Addr payload = params_.valueBytes;
    janus_assert(payload >= 8 && payload % 8 == 0,
                 "WAL payloads are word-granular");
    // The WAL region is the workload's heap: one reserved header
    // line plus exactly txnsPerCore records (sequential append, no
    // wrap). The pool stages one record's payload.
    const Addr wal_bytes =
        walHeaderBytes +
        Addr(params_.txnsPerCore) * walRecordFootprint(payload);
    CoreState &cs =
        allocCommon(core, system, wal_bytes, lineBytes, payload);
    // Volatile append cursor (the kernels advance it in place).
    system.mem().writeWord(cs.ctx + ctx::aux,
                           cs.heap + walHeaderBytes);
}

bool
WalAppendWorkload::next(unsigned core, SparseMemory &mem,
                        std::string &fn,
                        std::vector<std::uint64_t> &args)
{
    CoreState &cs = cores_.at(core);
    if (cs.txnsLeft == 0)
        return false;
    const std::uint64_t seq =
        params_.txnsPerCore - cs.txnsLeft + 1; // 1-based
    --cs.txnsLeft;

    // Stage the deterministic payload into the volatile pool buffer
    // (torn-bit-encoded for Mnemosyne) and checksum exactly what
    // the appender will copy.
    const std::uint64_t words = params_.valueBytes / 8;
    std::vector<std::uint8_t> bytes(params_.valueBytes);
    for (std::uint64_t w = 0; w < words; ++w) {
        const std::uint64_t word = walPayloadWord(
            core, seq, w, variant_ == LogVariant::Mnemosyne);
        mem.writeWord(cs.pool + 8 * w, word);
        std::memcpy(bytes.data() + 8 * w, &word, 8);
    }
    const std::uint64_t csum =
        walChecksum(bytes.data(), bytes.size(), seq);

    const unsigned group = std::max(1u, params_.walGroup);
    const bool fence = cs.txnsLeft == 0 || seq % group == 0;
    fn = "wal_append";
    args = {cs.ctx,       cs.pool, params_.valueBytes,
            seq,          csum,    fence ? 1ull : 0ull};
    return true;
}

void
WalAppendWorkload::checkRecord(const WalRecord &rec,
                               unsigned core) const
{
    janus_assert(rec.payload.size() == params_.valueBytes,
                 "wal core %u: record %llu has size %zu, expected "
                 "%llu",
                 core, static_cast<unsigned long long>(rec.seq),
                 rec.payload.size(),
                 static_cast<unsigned long long>(params_.valueBytes));
    janus_assert(walChecksum(rec.payload.data(), rec.payload.size(),
                             rec.seq) == rec.csum,
                 "wal core %u: record %llu checksum mismatch", core,
                 static_cast<unsigned long long>(rec.seq));
    for (std::uint64_t w = 0; w < params_.valueBytes / 8; ++w) {
        std::uint64_t word;
        std::memcpy(&word, rec.payload.data() + 8 * w, 8);
        janus_assert(
            word == walPayloadWord(core, rec.seq, w,
                                   variant_ == LogVariant::Mnemosyne),
            "wal core %u: record %llu word %llu corrupt", core,
            static_cast<unsigned long long>(rec.seq),
            static_cast<unsigned long long>(w));
    }
}

void
WalAppendWorkload::validate(const SparseMemory &mem,
                            unsigned core) const
{
    const WalScanResult scan =
        scanWalLog(mem, walBase(core), variant_);
    janus_assert(!scan.sawTorn,
                 "wal core %u: torn record after a clean run", core);
    janus_assert(scan.records.size() == params_.txnsPerCore,
                 "wal core %u: %zu durable records, expected %u",
                 core, scan.records.size(), params_.txnsPerCore);
    for (const WalRecord &rec : scan.records)
        checkRecord(rec, core);
}

void
WalAppendWorkload::validateRecovered(const SparseMemory &mem,
                                     unsigned core) const
{
    // Any-boundary invariant: after recovery the log is a clean,
    // contiguous prefix of the append sequence — scanWalLog already
    // enforces seq contiguity from 1.
    const WalScanResult scan =
        scanWalLog(mem, walBase(core), variant_);
    janus_assert(!scan.sawTorn,
                 "wal core %u: recovery left a torn tail", core);
    janus_assert(scan.records.size() <= params_.txnsPerCore,
                 "wal core %u: more durable records than appended",
                 core);
    for (const WalRecord &rec : scan.records)
        checkRecord(rec, core);
}

unsigned
WalAppendWorkload::recover(SparseMemory &image, unsigned core) const
{
    return recoverWalLog(image, walBase(core), variant_);
}

} // namespace janus
