#include "workloads/tatp.hh"

#include "common/logging.hh"
#include "ir/builder.hh"
#include "txn/undo_log.hh"

namespace janus
{

void
TatpWorkload::buildKernels(Module &module, bool manual) const
{
    IrBuilder b(module);
    // tatp_update(ctx, sid, bits, src): UPDATE_SUBSCRIBER — set the
    // subscriber's flag word and replace its profile payload.
    b.beginFunction("tatp_update", 4);
    int ctx_reg = b.arg(0);
    int sid = b.arg(1);
    int bits = b.arg(2);
    int src = b.arg(3);
    b.txBegin();
    int heap = b.load(ctx_reg, ctx::heap);
    int size = b.load(ctx_reg, ctx::param1);
    int row_bytes = b.load(ctx_reg, ctx::param2);
    int row = b.add(heap, b.mul(sid, row_bytes));
    int bits_addr = b.addI(row, 8);
    int val = b.addI(row, lineBytes);
    if (manual) {
        // Direct-indexed row: everything is known at entry.
        int pb = b.preInit();
        b.preBothVal(pb, bits_addr, bits);
        int pv = b.preInit();
        b.preBothR(pv, val, src, size);
    }
    b.call("undo_append", {ctx_reg, row, row_bytes});
    if (manual) {
        emitCommitPre(b, ctx_reg);
    }
    b.sfence(); // backup step complete
    b.store(row, bits, 8);
    b.memCpyR(val, src, size);
    b.clwbR(row, row_bytes);
    b.sfence();
    b.call("tx_finish", {ctx_reg});
    b.txEnd();
    b.ret();
    b.endFunction();
}

void
TatpWorkload::setupCore(unsigned core, NvmSystem &system)
{
    const Addr row_bytes = lineBytes + params_.valueBytes;
    CoreState &cs = allocCommon(core, system,
                                subscribers_ * row_bytes, lineBytes,
                                params_.valueBytes);
    SparseMemory &mem = system.mem();
    mem.writeWord(cs.ctx + ctx::param1, params_.valueBytes);
    mem.writeWord(cs.ctx + ctx::param2, row_bytes);

    if (mirror_.size() <= core) {
        mirror_.resize(core + 1);
        history_.resize(core + 1);
    }
    mirror_[core].assign(subscribers_, Row{});
    history_[core].assign(subscribers_, {});
    for (unsigned s = 0; s < subscribers_; ++s) {
        Addr row = cs.heap + s * row_bytes;
        std::uint64_t seed =
            (std::uint64_t(core + 1) << 40) | ++cs.uniqueCounter;
        mem.writeWord(row + 0, s);     // s_id
        mem.writeWord(row + 8, 0);     // bit/hex flags
        writeValue(mem, row + lineBytes, seed);
        mirror_[core][s] = Row{0, seed};
        history_[core][s].push_back(Row{0, seed});
    }
}

bool
TatpWorkload::next(unsigned core, SparseMemory &mem, std::string &fn,
                   std::vector<std::uint64_t> &args)
{
    CoreState &cs = cores_.at(core);
    if (cs.txnsLeft == 0)
        return false;
    --cs.txnsLeft;
    std::uint64_t sid = cs.rng.below(subscribers_);
    std::uint64_t bits = cs.rng.next();
    Addr src = stageValue(core, mem);
    mirror_[core][sid] = Row{bits, lastValueSeed(core)};
    history_[core][sid].push_back(Row{bits, lastValueSeed(core)});
    fn = "tatp_update";
    args = {cs.ctx, sid, bits, src};
    return true;
}

void
TatpWorkload::validateRecovered(const SparseMemory &mem,
                                unsigned core) const
{
    // Each row must hold one of the (flags, payload) pairs it was
    // ever assigned — flags and payload from the SAME update, since
    // the transaction replaces them atomically.
    const CoreState &cs = cores_.at(core);
    const Addr row_bytes = lineBytes + params_.valueBytes;
    for (unsigned s = 0; s < subscribers_; ++s) {
        Addr row = cs.heap + s * row_bytes;
        janus_assert(mem.readWord(row) == s,
                     "tatp core %u: recovered row %u id", core, s);
        std::uint64_t bits = mem.readWord(row + 8);
        bool ok = false;
        for (const Row &r : history_[core][s])
            ok = ok || (r.bits == bits &&
                        checkValue(mem, row + lineBytes, r.seed));
        janus_assert(ok, "tatp core %u: recovered row %u torn", core,
                     s);
    }
}

void
TatpWorkload::validate(const SparseMemory &mem, unsigned core) const
{
    const CoreState &cs = cores_.at(core);
    const Addr row_bytes = lineBytes + params_.valueBytes;
    for (unsigned s = 0; s < subscribers_; ++s) {
        Addr row = cs.heap + s * row_bytes;
        janus_assert(mem.readWord(row) == s,
                     "tatp core %u: row %u id", core, s);
        janus_assert(mem.readWord(row + 8) == mirror_[core][s].bits,
                     "tatp core %u: row %u flags", core, s);
        janus_assert(checkValue(mem, row + lineBytes,
                                mirror_[core][s].seed),
                     "tatp core %u: row %u payload", core, s);
    }
}

} // namespace janus
