#include "workloads/tpcc.hh"

#include "common/logging.hh"
#include "ir/builder.hh"
#include "txn/undo_log.hh"

namespace janus
{

void
TpccWorkload::buildKernels(Module &module, bool manual) const
{
    IrBuilder b(module);
    // tpcc_neworder(ctx, cust, src): append the order header and
    // orderLines payload lines, then durably bump next_o_id.
    b.beginFunction("tpcc_neworder", 3);
    int ctx_reg = b.arg(0);
    int cust = b.arg(1);
    int src = b.arg(2);
    b.txBegin();
    int heap = b.load(ctx_reg, ctx::heap);
    int ol_bytes = b.load(ctx_reg, ctx::param2); // orderLines * S
    int order_bytes = b.addI(ol_bytes, lineBytes);
    int scr = b.load(ctx_reg, ctx::scratch);

    // district line is heap[0]; orders follow.
    int oid = b.load(heap, 0);
    int order = b.add(b.addI(heap, lineBytes),
                      b.mul(oid, order_bytes));
    int new_oid = b.addI(oid, 1);

    // Assemble the order header in scratch (volatile), then publish
    // with a copy — data is complete before the copy.
    b.store(scr, oid, 0);
    b.store(scr, cust, 8);
    b.store(scr, b.constI(orderLines), 16);

    if (manual) {
        int ph = b.preInit();
        b.preBoth(ph, order, scr, lineBytes);
        int pl = b.preInit();
        b.preBothR(pl, b.addI(order, lineBytes), src, ol_bytes);
        int pd = b.preInit();
        b.preBothVal(pd, heap, new_oid);
    }
    b.call("undo_append", {ctx_reg, heap, b.constI(8)});
    if (manual) {
        emitCommitPre(b, ctx_reg);
    }
    b.sfence(); // backup step complete

    b.memCpy(order, scr, lineBytes);
    b.memCpyR(b.addI(order, lineBytes), src, ol_bytes);
    b.clwbR(order, order_bytes);
    // The order block precedes the district bump in the write queue,
    // so one fence commits the append atomically with the bump's
    // undo protection.
    b.store(heap, new_oid, 0);
    b.clwb(heap, 8);
    b.sfence();
    b.call("tx_finish", {ctx_reg});
    b.txEnd();
    b.ret();
    b.endFunction();
}

void
TpccWorkload::setupCore(unsigned core, NvmSystem &system)
{
    const Addr order_bytes =
        lineBytes + orderLines * params_.valueBytes;
    CoreState &cs = allocCommon(
        core, system,
        lineBytes + (params_.txnsPerCore + 2) * order_bytes,
        lineBytes, orderLines * params_.valueBytes);
    SparseMemory &mem = system.mem();
    mem.writeWord(cs.ctx + ctx::param1, params_.valueBytes);
    mem.writeWord(cs.ctx + ctx::param2,
                  orderLines * params_.valueBytes);
    mem.writeWord(cs.heap, 0); // next_o_id
    if (mirror_.size() <= core)
        mirror_.resize(core + 1);
    mirror_[core].clear();
}

bool
TpccWorkload::next(unsigned core, SparseMemory &mem, std::string &fn,
                   std::vector<std::uint64_t> &args)
{
    CoreState &cs = cores_.at(core);
    if (cs.txnsLeft == 0)
        return false;
    --cs.txnsLeft;
    std::uint64_t cust = cs.rng.below(3000);
    Addr src = stageValues(core, mem, orderLines);
    mirror_[core].push_back(Order{cust, lastValueSeeds(core)});
    fn = "tpcc_neworder";
    args = {cs.ctx, cust, src};
    return true;
}

void
TpccWorkload::validateRecovered(const SparseMemory &mem,
                                unsigned core) const
{
    // next_o_id = k must expose exactly the first k orders with the
    // contents they were created with.
    const CoreState &cs = cores_.at(core);
    const Addr order_bytes =
        lineBytes + orderLines * params_.valueBytes;
    std::uint64_t k = mem.readWord(cs.heap);
    janus_assert(k <= mirror_[core].size(),
                 "tpcc core %u: recovered next_o_id too large", core);
    for (std::uint64_t o = 0; o < k; ++o) {
        Addr block = cs.heap + lineBytes + o * order_bytes;
        janus_assert(mem.readWord(block) == o &&
                         mem.readWord(block + 8) ==
                             mirror_[core][o].customer &&
                         mem.readWord(block + 16) == orderLines,
                     "tpcc core %u: recovered order %llu header torn",
                     core, static_cast<unsigned long long>(o));
        for (unsigned l = 0; l < orderLines; ++l)
            janus_assert(
                checkValue(mem,
                           block + lineBytes +
                               l * params_.valueBytes,
                           mirror_[core][o].lineSeeds[l]),
                "tpcc core %u: recovered order %llu line %u torn",
                core, static_cast<unsigned long long>(o), l);
    }
}

void
TpccWorkload::validate(const SparseMemory &mem, unsigned core) const
{
    const CoreState &cs = cores_.at(core);
    const Addr order_bytes =
        lineBytes + orderLines * params_.valueBytes;
    const auto &orders = mirror_[core];
    janus_assert(mem.readWord(cs.heap) == orders.size(),
                 "tpcc core %u: next_o_id %llu vs %zu", core,
                 static_cast<unsigned long long>(
                     mem.readWord(cs.heap)),
                 orders.size());
    for (std::size_t o = 0; o < orders.size(); ++o) {
        Addr block = cs.heap + lineBytes + o * order_bytes;
        janus_assert(mem.readWord(block) == o,
                     "tpcc core %u: order %zu id", core, o);
        janus_assert(mem.readWord(block + 8) == orders[o].customer,
                     "tpcc core %u: order %zu customer", core, o);
        janus_assert(mem.readWord(block + 16) == orderLines,
                     "tpcc core %u: order %zu ol count", core, o);
        for (unsigned l = 0; l < orderLines; ++l)
            janus_assert(
                checkValue(mem,
                           block + lineBytes +
                               l * params_.valueBytes,
                           orders[o].lineSeeds[l]),
                "tpcc core %u: order %zu line %u", core, o, l);
    }
}

} // namespace janus
