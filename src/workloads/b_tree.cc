#include "workloads/b_tree.hh"

#include "common/logging.hh"
#include "ir/builder.hh"
#include "txn/undo_log.hh"

namespace janus
{

namespace
{

/** Keys per leaf key-range (one more than the capacity). */
constexpr unsigned keysPerRange = 8;

} // namespace

void
BTreeWorkload::buildKernels(Module &module, bool manual) const
{
    IrBuilder b(module);
    // btree_upsert(ctx, key, src): descend two internal levels,
    // then update in place or shift-insert into the leaf.
    b.beginFunction("btree_upsert", 3);
    int ctx_reg = b.arg(0);
    int key = b.arg(1);
    int src = b.arg(2);
    b.txBegin();
    int size = b.load(ctx_reg, ctx::param1);
    int zero = b.constI(0);

    int pd = -1;
    if (manual) {
        pd = b.preInit();
        b.preDataR(pd, src, size); // payload known at entry
    }

    // Two-level descent; each internal node holds 7 separators at
    // +8.. and 8 children at +64...
    int node = b.newReg();
    b.movTo(node, b.load(ctx_reg, ctx::aux)); // root
    int lvl = b.newReg();
    b.constTo(lvl, 0);
    unsigned descend = b.newBlock();
    unsigned scan_init = b.newBlock();
    unsigned scan_head = b.newBlock();
    unsigned scan_body = b.newBlock();
    unsigned scan_take = b.newBlock();
    unsigned scan_next = b.newBlock();
    unsigned scan_done = b.newBlock();
    unsigned at_leaf = b.newBlock();
    int idx = b.newReg();
    int i = b.newReg();
    b.br(descend);

    b.setBlock(descend);
    int deeper = b.cmpLt(lvl, b.constI(2));
    b.brCond(deeper, scan_init, at_leaf);
    b.setBlock(scan_init);
    b.constTo(idx, 0);
    b.constTo(i, 1);
    b.br(scan_head);
    b.setBlock(scan_head);
    int more = b.cmpLe(i, b.constI(7));
    b.brCond(more, scan_body, scan_done);
    b.setBlock(scan_body);
    int sep = b.load(b.add(node, b.shlI(i, 3)), 0);
    int ge = b.cmpLe(sep, key);
    b.brCond(ge, scan_take, scan_next);
    b.setBlock(scan_take);
    b.movTo(idx, i);
    b.br(scan_next);
    b.setBlock(scan_next);
    b.movTo(i, b.addI(i, 1));
    b.br(scan_head);
    b.setBlock(scan_done);
    int child_slot = b.add(node, b.shlI(idx, 3));
    b.movTo(node, b.load(child_slot, lineBytes));
    b.movTo(lvl, b.addI(lvl, 1));
    b.br(descend);

    // Leaf: find the insertion position.
    b.setBlock(at_leaf);
    int leaf = node;
    int cnt = b.load(leaf, 0);
    int pos = b.newReg();
    b.constTo(pos, 0);
    unsigned pos_head = b.newBlock();
    unsigned pos_body = b.newBlock();
    unsigned pos_step = b.newBlock();
    unsigned pos_done = b.newBlock();
    b.br(pos_head);
    b.setBlock(pos_head);
    int in_range = b.cmpLt(pos, cnt);
    b.brCond(in_range, pos_body, pos_done);
    b.setBlock(pos_body);
    int k_at = b.load(b.add(leaf, b.shlI(pos, 3)), 8);
    int smaller = b.cmpLt(k_at, key);
    b.brCond(smaller, pos_step, pos_done);
    b.setBlock(pos_step);
    b.movTo(pos, b.addI(pos, 1));
    b.br(pos_head);
    b.setBlock(pos_done);

    unsigned check_hit = b.newBlock();
    unsigned do_update = b.newBlock();
    unsigned do_insert = b.newBlock();
    int have_slot = b.cmpLt(pos, cnt);
    b.brCond(have_slot, check_hit, do_insert);
    b.setBlock(check_hit);
    int k_here = b.load(b.add(leaf, b.shlI(pos, 3)), 8);
    int is_hit = b.cmpEq(k_here, key);
    b.brCond(is_hit, do_update, do_insert);

    // Update in place: log only the value slot.
    b.setBlock(do_update);
    int vslot_u = b.add(b.addI(leaf, lineBytes), b.mul(pos, size));
    if (manual)
        b.preAddrR(pd, vslot_u, size);
    b.call("undo_append", {ctx_reg, vslot_u, size});
    if (manual) {
        emitCommitPre(b, ctx_reg);
    }
    b.sfence();
    b.memCpyR(vslot_u, src, size);
    b.clwbR(vslot_u, size);
    b.sfence();
    b.call("tx_finish", {ctx_reg});
    b.txEnd();
    b.ret();

    // Insert: prepare the post-insert images (key line, affected
    // value range) in scratch, log only the affected pre-images,
    // then publish with two copies. The publish copies are fully
    // determined once scratch is assembled, so both the manual and
    // the automated instrumentation can pre-execute them.
    b.setBlock(do_insert);
    int nshift = b.sub(cnt, pos);
    int scr = b.load(ctx_reg, ctx::scratch);
    int scr_vals = b.addI(scr, lineBytes);

    // scratch line 0: the new key line.
    b.memCpy(scr, leaf, lineBytes);
    int scr_keys = b.add(scr, b.shlI(pos, 3));
    unsigned shift_keys = b.newBlock();
    unsigned build_vals = b.newBlock();
    int any = b.cmpLt(zero, nshift);
    b.brCond(any, shift_keys, build_vals);
    b.setBlock(shift_keys);
    b.memCpyR(b.addI(scr_keys, 16), b.addI(scr_keys, 8),
              b.shlI(nshift, 3));
    b.br(build_vals);
    b.setBlock(build_vals);
    b.store(scr_keys, key, 8);
    b.store(scr, b.addI(cnt, 1), 0);

    // scratch values: [new value][old values pos..cnt).
    int vslot_i = b.add(b.addI(leaf, lineBytes), b.mul(pos, size));
    b.memCpyR(scr_vals, src, size);
    int tail_bytes = b.mul(nshift, size);
    b.memCpyR(b.add(scr_vals, size), vslot_i, tail_bytes);
    int region_bytes = b.add(tail_bytes, size);

    if (manual) {
        int pk = b.preInit();
        b.preBoth(pk, leaf, scr, lineBytes);
        int pv2 = b.preInit();
        b.preBothR(pv2, vslot_i, scr_vals, region_bytes);
    }
    b.call("undo_append", {ctx_reg, leaf, b.constI(lineBytes)});
    unsigned log_vals = b.newBlock();
    unsigned seal = b.newBlock();
    int any2 = b.cmpLt(zero, nshift);
    b.brCond(any2, log_vals, seal);
    b.setBlock(log_vals);
    b.call("undo_append", {ctx_reg, vslot_i, tail_bytes});
    b.br(seal);
    b.setBlock(seal);
    if (manual) {
        emitCommitPre(b, ctx_reg);
    }
    b.sfence(); // backup step complete

    b.memCpy(leaf, scr, lineBytes);
    b.memCpyR(vslot_i, scr_vals, region_bytes);
    b.clwb(leaf, lineBytes);
    b.clwbR(vslot_i, region_bytes);
    b.sfence();
    b.call("tx_finish", {ctx_reg});
    b.txEnd();
    b.ret();
    b.endFunction();
}

Addr
BTreeWorkload::leafAddr(unsigned core, unsigned leaf) const
{
    const Addr leaf_bytes = lineBytes + leafCap * params_.valueBytes;
    return trees_.at(core).leaves + leaf * leaf_bytes;
}

void
BTreeWorkload::setupCore(unsigned core, NvmSystem &system)
{
    const Addr leaf_bytes = lineBytes + leafCap * params_.valueBytes;
    // Scratch holds a staged key line plus a full value region.
    CoreState &cs = allocCommon(core, system, lineBytes,
                                lineBytes + 8 * params_.valueBytes,
                                params_.valueBytes);
    SparseMemory &mem = system.mem();
    mem.writeWord(cs.ctx + ctx::param1, params_.valueBytes);
    mem.writeWord(cs.ctx + ctx::param2, leaf_bytes);

    if (trees_.size() <= core)
        trees_.resize(core + 1);
    CoreTree &tree = trees_[core];
    tree.mirror.clear();
    tree.history.clear();
    tree.occupancy.assign(numLeaves, 0);

    RegionAllocator &alloc = system.allocatorFor(core);
    tree.root = alloc.alloc(2 * lineBytes);
    tree.mids = alloc.alloc(fanout * 2 * lineBytes);
    tree.leaves = alloc.alloc(numLeaves * leaf_bytes);
    warmRegion(system, core, tree.root, 2 * lineBytes);
    warmRegion(system, core, tree.mids, fanout * 2 * lineBytes);
    warmRegion(system, core, tree.leaves, numLeaves * leaf_bytes);
    mem.writeWord(cs.ctx + ctx::aux, tree.root);

    // Root separators/children over 8 mid nodes; each mid covers 64
    // consecutive keys split across 8 leaves of 8-key ranges.
    for (unsigned i = 1; i < fanout; ++i)
        mem.writeWord(tree.root + i * 8,
                      i * fanout * keysPerRange);
    for (unsigned i = 0; i < fanout; ++i)
        mem.writeWord(tree.root + lineBytes + i * 8,
                      tree.mids + i * 2 * lineBytes);
    for (unsigned j = 0; j < fanout; ++j) {
        Addr mid = tree.mids + j * 2 * lineBytes;
        for (unsigned i = 1; i < fanout; ++i)
            mem.writeWord(mid + i * 8,
                          (j * fanout + i) * keysPerRange);
        for (unsigned i = 0; i < fanout; ++i)
            mem.writeWord(mid + lineBytes + i * 8,
                          leafAddr(core, j * fanout + i));
    }

    // Pre-seed two keys per leaf so traversals and shifts are real.
    for (unsigned leaf = 0; leaf < numLeaves; ++leaf) {
        Addr la = leafAddr(core, leaf);
        mem.writeWord(la, 2);
        for (unsigned s = 0; s < 2; ++s) {
            std::uint64_t key = leaf * keysPerRange + 2 * s + 1;
            std::uint64_t seed = (std::uint64_t(core + 1) << 40) |
                                 ++cs.uniqueCounter;
            mem.writeWord(la + 8 + s * 8, key);
            writeValue(mem, la + lineBytes + s * params_.valueBytes,
                       seed);
            tree.mirror[key] = seed;
            tree.history[key].push_back(seed);
        }
        tree.occupancy[leaf] = 2;
    }
}

bool
BTreeWorkload::next(unsigned core, SparseMemory &mem, std::string &fn,
                    std::vector<std::uint64_t> &args)
{
    CoreState &cs = cores_.at(core);
    if (cs.txnsLeft == 0)
        return false;
    --cs.txnsLeft;
    CoreTree &tree = trees_[core];
    std::uint64_t key;
    for (;;) {
        key = cs.rng.below(numLeaves * keysPerRange);
        unsigned leaf = static_cast<unsigned>(key / keysPerRange);
        if (tree.mirror.count(key))
            break; // update path
        if (tree.occupancy[leaf] < leafCap) {
            ++tree.occupancy[leaf]; // insert path
            break;
        }
    }
    Addr src = stageValue(core, mem);
    tree.mirror[key] = lastValueSeed(core);
    tree.history[key].push_back(lastValueSeed(core));
    fn = "btree_upsert";
    args = {cs.ctx, key, src};
    return true;
}

void
BTreeWorkload::validateRecovered(const SparseMemory &mem,
                                 unsigned core) const
{
    const CoreTree &tree = trees_[core];
    for (unsigned leaf = 0; leaf < numLeaves; ++leaf) {
        Addr la = leafAddr(core, leaf);
        std::uint64_t cnt = mem.readWord(la);
        janus_assert(cnt <= leafCap,
                     "btree core %u: recovered leaf %u count", core,
                     leaf);
        std::uint64_t prev = 0;
        for (unsigned s = 0; s < cnt; ++s) {
            std::uint64_t key = mem.readWord(la + 8 + s * 8);
            janus_assert(s == 0 || key > prev,
                         "btree core %u: recovered leaf %u unsorted",
                         core, leaf);
            prev = key;
            auto it = tree.history.find(key);
            janus_assert(it != tree.history.end(),
                         "btree core %u: recovered key %llu unknown",
                         core, static_cast<unsigned long long>(key));
            bool ok = false;
            for (std::uint64_t seed : it->second)
                ok = ok ||
                     checkValue(mem,
                                la + lineBytes +
                                    s * params_.valueBytes,
                                seed);
            janus_assert(ok,
                         "btree core %u: recovered key %llu holds a "
                         "value it never had", core,
                         static_cast<unsigned long long>(key));
        }
    }
}

void
BTreeWorkload::validate(const SparseMemory &mem, unsigned core) const
{
    const CoreTree &tree = trees_[core];
    unsigned total = 0;
    for (unsigned leaf = 0; leaf < numLeaves; ++leaf) {
        Addr la = leafAddr(core, leaf);
        std::uint64_t cnt = mem.readWord(la);
        janus_assert(cnt <= leafCap, "btree core %u: leaf %u count",
                     core, leaf);
        std::uint64_t prev = 0;
        for (unsigned s = 0; s < cnt; ++s) {
            std::uint64_t key = mem.readWord(la + 8 + s * 8);
            janus_assert(s == 0 || key > prev,
                         "btree core %u: leaf %u unsorted", core,
                         leaf);
            prev = key;
            auto it = tree.mirror.find(key);
            janus_assert(it != tree.mirror.end(),
                         "btree core %u: unexpected key %llu", core,
                         static_cast<unsigned long long>(key));
            janus_assert(
                checkValue(mem,
                           la + lineBytes + s * params_.valueBytes,
                           it->second),
                "btree core %u: key %llu wrong value", core,
                static_cast<unsigned long long>(key));
            ++total;
        }
    }
    janus_assert(total == tree.mirror.size(),
                 "btree core %u: %u keys vs %zu expected", core,
                 total, tree.mirror.size());
}

} // namespace janus
