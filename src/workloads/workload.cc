#include "workloads/workload.hh"

#include "common/logging.hh"
#include "txn/undo_log.hh"

namespace janus
{

unsigned
Workload::recover(SparseMemory &image, unsigned core) const
{
    return recoverUndoLog(image, logBase(core));
}

TxnSource
Workload::source(unsigned core, NvmSystem &system)
{
    SparseMemory *mem = &system.mem();
    return [this, core, mem](std::string &fn,
                             std::vector<std::uint64_t> &args) {
        return next(core, *mem, fn, args);
    };
}

Workload::CoreState &
Workload::allocCommon(unsigned core, NvmSystem &system, Addr heap_bytes,
                      Addr scratch_bytes, Addr pool_bytes,
                      Addr log_bytes)
{
    if (cores_.size() <= core)
        cores_.resize(core + 1);
    CoreState &cs = cores_[core];
    // Draw from the core's shard-affine stripe (identical to the
    // global heap on single-shard or line-interleaved machines).
    RegionAllocator &alloc = system.allocatorFor(core);
    SparseMemory &mem = system.mem();

    if (log_bytes == 0)
        log_bytes = logRegionBytes;
    janus_assert(log_bytes >= logRegionBytes,
                 "log region smaller than the lane layout");
    cs.ctx = alloc.alloc(ctx::size);
    cs.log = alloc.alloc(log_bytes);
    cs.heap = alloc.alloc(heap_bytes);
    cs.scratch = alloc.alloc(scratch_bytes ? scratch_bytes : lineBytes);
    cs.pool = alloc.alloc(pool_bytes ? pool_bytes : lineBytes);
    cs.rng = Rng(params_.seed * 7919 + core * 104729 + 13);
    cs.txnsLeft = params_.txnsPerCore;
    cs.uniqueCounter = 0;
    cs.history.clear();

    mem.writeWord(cs.ctx + ctx::logBase, cs.log);
    mem.writeWord(cs.ctx + ctx::heap, cs.heap);
    mem.writeWord(cs.ctx + ctx::scratch, cs.scratch);
    mem.writeWord(cs.ctx + ctx::pool, cs.pool);
    mem.writeWord(cs.log, 0); // empty log

    // Short measurement runs start with warm tags (see warmRegion).
    warmRegion(system, core, cs.ctx, ctx::size);
    warmRegion(system, core, cs.log, log_bytes);
    warmRegion(system, core, cs.heap, heap_bytes);
    warmRegion(system, core, cs.scratch,
               scratch_bytes ? scratch_bytes : lineBytes);
    warmRegion(system, core, cs.pool,
               pool_bytes ? pool_bytes : lineBytes);
    return cs;
}

void
Workload::writeValue(SparseMemory &mem, Addr addr,
                     std::uint64_t seed) const
{
    janus_assert(lineOffset(addr) == 0, "values are line-aligned");
    for (Addr off = 0; off < params_.valueBytes; off += lineBytes)
        mem.writeLine(addr + off,
                      CacheLine::fromSeed(seed * 1000003 + off));
}

bool
Workload::checkValue(const SparseMemory &mem, Addr addr,
                     std::uint64_t seed) const
{
    for (Addr off = 0; off < params_.valueBytes; off += lineBytes) {
        if (!(mem.readLine(addr + off) ==
              CacheLine::fromSeed(seed * 1000003 + off)))
            return false;
    }
    return true;
}

void
Workload::warmRegion(NvmSystem &system, unsigned core, Addr base,
                     Addr bytes) const
{
    SetAssocCache &l2 = system.core(core).l2();
    // Warming more than half the L2 is self-defeating (a region
    // larger than the cache cannot be resident anyway).
    Addr limit = std::min<Addr>(
        bytes, system.config().core.l2Bytes / 2);
    for (Addr line = lineAlign(base); line < base + limit;
         line += lineBytes)
        l2.access(line, false);
}

std::uint64_t
Workload::nextSeed(unsigned core)
{
    CoreState &cs = cores_.at(core);
    std::uint64_t seed;
    if (!cs.history.empty() && cs.rng.chance(params_.dupRatio)) {
        seed = cs.history[cs.rng.below(cs.history.size())];
    } else {
        seed = (std::uint64_t(core + 1) << 40) | ++cs.uniqueCounter;
    }
    cs.history.push_back(seed);
    if (cs.history.size() > 64)
        cs.history.erase(cs.history.begin());
    return seed;
}

Addr
Workload::stageValues(unsigned core, SparseMemory &mem, unsigned count)
{
    CoreState &cs = cores_.at(core);
    cs.lastSeeds.clear();
    for (unsigned i = 0; i < count; ++i) {
        std::uint64_t seed = nextSeed(core);
        writeValue(mem, cs.pool + i * params_.valueBytes, seed);
        cs.lastSeeds.push_back(seed);
    }
    return cs.pool;
}

Addr
Workload::stageValue(unsigned core, SparseMemory &mem)
{
    CoreState &cs = cores_.at(core);
    writeValue(mem, cs.pool, nextSeed(core));
    return cs.pool;
}

} // namespace janus
