#include "workloads/rb_tree.hh"

#include "common/logging.hh"
#include "ir/builder.hh"
#include "txn/undo_log.hh"

namespace janus
{

namespace
{

// Node header layout (one line; value payload at +64):
constexpr std::int64_t offKey = 0;
constexpr std::int64_t offLeft = 8;
constexpr std::int64_t offRight = 16;
constexpr std::int64_t offParent = 24;
constexpr std::int64_t offColor = 32; // 1 = red, 0 = black

/**
 * Emit rb_log(ctx, node): undo-log a node header exactly once per
 * transaction. The per-transaction logged set lives in the scratch
 * area ([0] count, then addresses).
 */
void
buildRbLog(IrBuilder &b)
{
    b.beginFunction("rb_log", 2);
    int ctx_reg = b.arg(0);
    int node = b.arg(1);
    int scr = b.load(ctx_reg, ctx::scratch);
    int cnt = b.load(scr, 0);
    int i = b.newReg();
    b.constTo(i, 0);

    unsigned head = b.newBlock();
    unsigned body = b.newBlock();
    unsigned step = b.newBlock();
    unsigned miss = b.newBlock();
    unsigned done = b.newBlock();
    b.br(head);

    b.setBlock(head);
    int more = b.cmpLt(i, cnt);
    b.brCond(more, body, miss);

    b.setBlock(body);
    int slot = b.add(scr, b.shlI(i, 3));
    int logged = b.load(slot, 8);
    int same = b.cmpEq(logged, node);
    b.brCond(same, done, step);

    b.setBlock(step);
    b.movTo(i, b.addI(i, 1));
    b.br(head);

    b.setBlock(miss);
    int free_slot = b.add(scr, b.shlI(cnt, 3));
    b.store(free_slot, node, 8);
    b.store(scr, b.addI(cnt, 1), 0);
    b.call("undo_append", {ctx_reg, node, b.constI(lineBytes)});
    b.br(done);

    b.setBlock(done);
    b.ret();
    b.endFunction();
}

/** Emit a rotation. @p left selects rotate-left vs rotate-right. */
void
buildRotate(IrBuilder &b, bool left)
{
    const std::int64_t toward = left ? offLeft : offRight;
    const std::int64_t away = left ? offRight : offLeft;

    b.beginFunction(left ? "rb_rotl" : "rb_rotr", 2);
    int ctx_reg = b.arg(0);
    int x = b.arg(1);
    int heap = b.load(ctx_reg, ctx::heap);
    int y = b.load(x, away);
    b.call("rb_log", {ctx_reg, x});
    b.call("rb_log", {ctx_reg, y});
    int y_inner = b.load(y, toward);
    b.store(x, y_inner, away); // x.away = y.toward
    int zero = b.constI(0);

    unsigned fix_child = b.newBlock();
    unsigned parent_link = b.newBlock();
    int has_inner = b.cmpNe(y_inner, zero);
    b.brCond(has_inner, fix_child, parent_link);
    b.setBlock(fix_child);
    b.call("rb_log", {ctx_reg, y_inner});
    b.store(y_inner, x, offParent);
    b.br(parent_link);

    b.setBlock(parent_link);
    int xp = b.load(x, offParent);
    b.store(y, xp, offParent);
    unsigned at_root = b.newBlock();
    unsigned not_root = b.newBlock();
    unsigned relink = b.newBlock();
    int is_root = b.cmpEq(xp, zero);
    b.brCond(is_root, at_root, not_root);

    b.setBlock(at_root);
    b.call("rb_log", {ctx_reg, heap}); // root-pointer line
    b.store(heap, y, 0);
    b.br(relink);

    b.setBlock(not_root);
    b.call("rb_log", {ctx_reg, xp});
    int xp_left = b.load(xp, offLeft);
    unsigned was_left = b.newBlock();
    unsigned was_right = b.newBlock();
    int on_left = b.cmpEq(xp_left, x);
    b.brCond(on_left, was_left, was_right);
    b.setBlock(was_left);
    b.store(xp, y, offLeft);
    b.br(relink);
    b.setBlock(was_right);
    b.store(xp, y, offRight);
    b.br(relink);

    b.setBlock(relink);
    b.store(y, x, toward); // y.toward = x
    b.store(x, y, offParent);
    b.ret();
    b.endFunction();
}

} // namespace

void
RbTreeWorkload::buildKernels(Module &module, bool manual) const
{
    IrBuilder b(module);
    buildRbLog(b);
    buildRotate(b, true);
    buildRotate(b, false);

    // rb_insert(ctx, key, src): CLRS insertion with fixup.
    b.beginFunction("rb_insert", 3);
    int ctx_reg = b.arg(0);
    int key = b.arg(1);
    int src = b.arg(2);
    b.txBegin();
    int heap = b.load(ctx_reg, ctx::heap);
    int size = b.load(ctx_reg, ctx::param1);
    int node_bytes = b.load(ctx_reg, ctx::param2);
    int scr = b.load(ctx_reg, ctx::scratch);
    int zero = b.constI(0);
    int one = b.constI(1);
    b.store(scr, zero, 0); // reset the logged set

    // Allocate the new node from the bump pool.
    int node = b.load(ctx_reg, ctx::aux);
    b.store(ctx_reg, b.add(node, node_bytes), ctx::aux);
    int val = b.addI(node, lineBytes);
    if (manual) {
        // The node address comes straight off the bump pointer and
        // the payload is an argument: pre-execute the value lines
        // before any of the tree work.
        int pv = b.preInit();
        b.preBothR(pv, val, src, size);
    }
    b.store(node, key, offKey);
    b.store(node, zero, offLeft);
    b.store(node, zero, offRight);
    b.store(node, zero, offParent);
    b.store(node, one, offColor); // new nodes are red
    b.memCpyR(val, src, size);

    // BST descent.
    int y = b.newReg();
    b.constTo(y, 0);
    int x = b.newReg();
    b.movTo(x, b.load(heap, 0));
    unsigned walk = b.newBlock();
    unsigned walk_body = b.newBlock();
    unsigned go_left = b.newBlock();
    unsigned go_right = b.newBlock();
    unsigned place = b.newBlock();
    b.br(walk);
    b.setBlock(walk);
    int x_null = b.cmpEq(x, zero);
    b.brCond(x_null, place, walk_body);
    b.setBlock(walk_body);
    b.movTo(y, x);
    int xk = b.load(x, offKey);
    int lt = b.cmpLt(key, xk);
    b.brCond(lt, go_left, go_right);
    b.setBlock(go_left);
    b.movTo(x, b.load(x, offLeft));
    b.br(walk);
    b.setBlock(go_right);
    b.movTo(x, b.load(x, offRight));
    b.br(walk);

    b.setBlock(place);
    b.store(node, y, offParent);
    unsigned empty_tree = b.newBlock();
    unsigned has_parent = b.newBlock();
    unsigned child_left = b.newBlock();
    unsigned child_right = b.newBlock();
    unsigned fix_entry = b.newBlock();
    int y_null = b.cmpEq(y, zero);
    b.brCond(y_null, empty_tree, has_parent);
    b.setBlock(empty_tree);
    b.call("rb_log", {ctx_reg, heap});
    b.store(heap, node, 0);
    b.br(fix_entry);
    b.setBlock(has_parent);
    b.call("rb_log", {ctx_reg, y});
    int yk = b.load(y, offKey);
    int lt2 = b.cmpLt(key, yk);
    b.brCond(lt2, child_left, child_right);
    b.setBlock(child_left);
    b.store(y, node, offLeft);
    b.br(fix_entry);
    b.setBlock(child_right);
    b.store(y, node, offRight);
    b.br(fix_entry);

    // Fixup loop.
    b.setBlock(fix_entry);
    int z = b.newReg();
    b.movTo(z, node);
    unsigned fix_head = b.newBlock();
    unsigned fix_check = b.newBlock();
    unsigned fix_body = b.newBlock();
    unsigned fix_done = b.newBlock();
    b.br(fix_head);

    b.setBlock(fix_head);
    int zp0 = b.load(z, offParent);
    int zp_null = b.cmpEq(zp0, zero);
    b.brCond(zp_null, fix_done, fix_check);
    b.setBlock(fix_check);
    int zpc = b.load(zp0, offColor);
    int zp_red = b.cmpEq(zpc, one);
    b.brCond(zp_red, fix_body, fix_done);

    b.setBlock(fix_body);
    int zp = b.load(z, offParent);
    int zpp = b.load(zp, offParent);
    unsigned have_gp = b.newBlock();
    int gp_null = b.cmpEq(zpp, zero);
    b.brCond(gp_null, fix_done, have_gp);
    b.setBlock(have_gp);
    int zpp_left = b.load(zpp, offLeft);
    unsigned left_side = b.newBlock();
    unsigned right_side = b.newBlock();
    int parent_is_left = b.cmpEq(zp, zpp_left);
    b.brCond(parent_is_left, left_side, right_side);

    // Emit one side of the fixup; mirrored by `left`.
    auto emit_side = [&](unsigned entry, bool left) {
        const std::int64_t away = left ? offRight : offLeft;
        const char *rot_in = left ? "rb_rotl" : "rb_rotr";
        const char *rot_out = left ? "rb_rotr" : "rb_rotl";

        b.setBlock(entry);
        int uncle = b.load(zpp, away);
        unsigned uncle_check = b.newBlock();
        unsigned recolor = b.newBlock();
        unsigned restructure = b.newBlock();
        unsigned inner_case = b.newBlock();
        unsigned outer_case = b.newBlock();
        int u_null = b.cmpEq(uncle, zero);
        b.brCond(u_null, restructure, uncle_check);

        b.setBlock(uncle_check);
        int ucolor = b.load(uncle, offColor);
        int u_red = b.cmpEq(ucolor, one);
        b.brCond(u_red, recolor, restructure);

        // Case 1: red uncle — recolor and move up.
        b.setBlock(recolor);
        b.call("rb_log", {ctx_reg, zp});
        b.call("rb_log", {ctx_reg, uncle});
        b.call("rb_log", {ctx_reg, zpp});
        b.store(zp, zero, offColor);
        b.store(uncle, zero, offColor);
        b.store(zpp, one, offColor);
        b.movTo(z, zpp);
        b.br(fix_head);

        // Cases 2/3: black uncle — rotate.
        b.setBlock(restructure);
        int z_away = b.load(zp, away);
        int is_inner = b.cmpEq(z, z_away);
        b.brCond(is_inner, inner_case, outer_case);
        b.setBlock(inner_case);
        b.movTo(z, zp);
        b.call(rot_in, {ctx_reg, z});
        b.br(outer_case);
        b.setBlock(outer_case);
        int zp2 = b.load(z, offParent);
        int zpp2 = b.load(zp2, offParent);
        b.call("rb_log", {ctx_reg, zp2});
        b.call("rb_log", {ctx_reg, zpp2});
        b.store(zp2, zero, offColor);
        b.store(zpp2, one, offColor);
        b.call(rot_out, {ctx_reg, zpp2});
        b.br(fix_head);
    };
    emit_side(left_side, true);
    emit_side(right_side, false);

    b.setBlock(fix_done);
    int root = b.load(heap, 0);
    int rcolor = b.load(root, offColor);
    unsigned blacken = b.newBlock();
    unsigned persist = b.newBlock();
    int r_red = b.cmpEq(rcolor, one);
    b.brCond(r_red, blacken, persist);
    b.setBlock(blacken);
    b.call("rb_log", {ctx_reg, root});
    b.store(root, zero, offColor);
    b.br(persist);

    // Persist phase: backup seal, then the new node and every
    // logged (potentially modified) header line.
    b.setBlock(persist);
    if (manual) {
        emitCommitPre(b, ctx_reg);
    }
    b.sfence(); // backup step complete
    b.clwbR(node, node_bytes);
    int cnt = b.load(scr, 0);
    int i = b.newReg();
    b.constTo(i, 0);
    unsigned ploop = b.newBlock();
    unsigned pbody = b.newBlock();
    unsigned pdone = b.newBlock();
    b.br(ploop);
    b.setBlock(ploop);
    int more = b.cmpLt(i, cnt);
    b.brCond(more, pbody, pdone);
    b.setBlock(pbody);
    int slot = b.add(scr, b.shlI(i, 3));
    int addr = b.load(slot, 8);
    b.clwb(addr, lineBytes);
    b.movTo(i, b.addI(i, 1));
    b.br(ploop);
    b.setBlock(pdone);
    b.sfence();
    b.call("tx_finish", {ctx_reg});
    b.txEnd();
    b.ret();
    b.endFunction();
}

void
RbTreeWorkload::setupCore(unsigned core, NvmSystem &system)
{
    const Addr node_bytes = lineBytes + params_.valueBytes;
    // heap line 0 holds the root pointer. The scratch area hosts the
    // per-transaction logged set (up to 127 node addresses; a fixup
    // touches at most ~3 nodes per level) and the log must hold as
    // many 128-byte entries.
    CoreState &cs = allocCommon(core, system, lineBytes,
                                lineBytes * 16, params_.valueBytes);
    SparseMemory &mem = system.mem();
    mem.writeWord(cs.ctx + ctx::param1, params_.valueBytes);
    mem.writeWord(cs.ctx + ctx::param2, node_bytes);
    Addr pool = system.allocatorFor(core).alloc(
        (params_.txnsPerCore + 4) * node_bytes);
    warmRegion(system, core, pool,
               (params_.txnsPerCore + 4) * node_bytes);
    mem.writeWord(cs.ctx + ctx::aux, pool);
    mem.writeWord(cs.heap, 0); // empty tree
    if (mirror_.size() <= core)
        mirror_.resize(core + 1);
    mirror_[core].clear();
}

bool
RbTreeWorkload::next(unsigned core, SparseMemory &mem, std::string &fn,
                     std::vector<std::uint64_t> &args)
{
    CoreState &cs = cores_.at(core);
    if (cs.txnsLeft == 0)
        return false;
    --cs.txnsLeft;
    std::uint64_t key;
    do {
        key = cs.rng.next() >> 16;
    } while (mirror_[core].count(key));
    Addr src = stageValue(core, mem);
    mirror_[core][key] = lastValueSeed(core);
    fn = "rb_insert";
    args = {cs.ctx, key, src};
    return true;
}

unsigned
RbTreeWorkload::checkSubtree(const SparseMemory &mem, Addr node,
                             Addr parent, std::uint64_t lo,
                             std::uint64_t hi, unsigned core,
                             unsigned *count) const
{
    if (node == 0)
        return 1; // null leaves are black
    std::uint64_t key = mem.readWord(node + offKey);
    std::uint64_t color = mem.readWord(node + offColor);
    janus_assert(mem.readWord(node + offParent) == parent,
                 "rb core %u: bad parent link at %llx", core,
                 static_cast<unsigned long long>(node));
    janus_assert(key >= lo && key <= hi,
                 "rb core %u: BST violation at key %llx", core,
                 static_cast<unsigned long long>(key));
    auto it = mirror_[core].find(key);
    janus_assert(it != mirror_[core].end(),
                 "rb core %u: unexpected key %llx", core,
                 static_cast<unsigned long long>(key));
    janus_assert(checkValue(mem, node + lineBytes, it->second),
                 "rb core %u: key %llx wrong value", core,
                 static_cast<unsigned long long>(key));
    Addr left = mem.readWord(node + offLeft);
    Addr right = mem.readWord(node + offRight);
    if (color == 1) {
        for (Addr child : {left, right})
            janus_assert(child == 0 ||
                             mem.readWord(child + offColor) == 0,
                         "rb core %u: red-red violation", core);
    }
    ++*count;
    unsigned bh_left =
        checkSubtree(mem, left, node, lo, key ? key - 1 : 0, core,
                     count);
    unsigned bh_right =
        checkSubtree(mem, right, node, key + 1, hi, core, count);
    janus_assert(bh_left == bh_right,
                 "rb core %u: black-height mismatch at %llx", core,
                 static_cast<unsigned long long>(node));
    return bh_left + (color == 0 ? 1 : 0);
}

void
RbTreeWorkload::validate(const SparseMemory &mem, unsigned core) const
{
    const CoreState &cs = cores_.at(core);
    Addr root = mem.readWord(cs.heap);
    if (root != 0)
        janus_assert(mem.readWord(root + offColor) == 0,
                     "rb core %u: red root", core);
    unsigned count = 0;
    checkSubtree(mem, root, 0, 0, ~std::uint64_t(0), core, &count);
    janus_assert(count == mirror_[core].size(),
                 "rb core %u: %u nodes vs %zu expected", core, count,
                 mirror_[core].size());
}

void
RbTreeWorkload::validateRecovered(const SparseMemory &mem,
                                  unsigned core) const
{
    // A recovered tree holds a committed prefix of the inserted
    // keys; every red-black/BST invariant must still hold, and every
    // present key must carry its (immutable) value.
    const CoreState &cs = cores_.at(core);
    Addr root = mem.readWord(cs.heap);
    if (root != 0)
        janus_assert(mem.readWord(root + offColor) == 0,
                     "rb core %u: recovered red root", core);
    unsigned count = 0;
    checkSubtree(mem, root, 0, 0, ~std::uint64_t(0), core, &count);
    janus_assert(count <= mirror_[core].size(),
                 "rb core %u: recovered tree has extra nodes", core);
}

} // namespace janus
