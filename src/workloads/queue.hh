/**
 * @file
 * Queue (Table 4): a persistent ring buffer; transactions randomly
 * enqueue or dequeue items. The item copy runs in a per-line loop
 * and the slot address comes from a pointer load, which is exactly
 * the combination the paper's Section 5.2.3 reports defeats the
 * static compiler pass (Figure 11's Queue bar).
 */

#ifndef JANUS_WORKLOADS_QUEUE_HH
#define JANUS_WORKLOADS_QUEUE_HH

#include <deque>

#include "workloads/workload.hh"

namespace janus
{

/** See file comment. */
class QueueWorkload : public Workload
{
  public:
    explicit QueueWorkload(const WorkloadParams &params,
                           unsigned capacity = 64)
        : Workload(params), capacity_(capacity)
    {}

    std::string name() const override { return "queue"; }
    void buildKernels(Module &module, bool manual) const override;
    void setupCore(unsigned core, NvmSystem &system) override;
    bool next(unsigned core, SparseMemory &mem, std::string &fn,
              std::vector<std::uint64_t> &args) override;
    void validate(const SparseMemory &mem,
                  unsigned core) const override;
    void validateRecovered(const SparseMemory &mem,
                           unsigned core) const override;

  private:
    unsigned capacity_; ///< ring slots (power of two)
    /** Expected queue contents (front first), per core. */
    std::vector<std::deque<std::uint64_t>> mirror_;
    /** Seeds ever enqueued into each physical slot, per core. */
    std::vector<std::vector<std::vector<std::uint64_t>>> slotHistory_;
    /** Total enqueues issued per core (slot assignment mirror). */
    std::vector<std::uint64_t> enqueues_;
};

} // namespace janus

#endif // JANUS_WORKLOADS_QUEUE_HH
