/**
 * @file
 * Array Swap (Table 4): each transaction durably swaps two random
 * items of a persistent array under undo logging. Addresses and
 * data are both known at transaction entry, giving Janus its widest
 * pre-execution window.
 */

#ifndef JANUS_WORKLOADS_ARRAY_SWAP_HH
#define JANUS_WORKLOADS_ARRAY_SWAP_HH

#include "workloads/workload.hh"

namespace janus
{

/** See file comment. */
class ArraySwapWorkload : public Workload
{
  public:
    explicit ArraySwapWorkload(const WorkloadParams &params,
                               unsigned items = 128)
        : Workload(params), items_(items)
    {}

    std::string name() const override { return "array_swap"; }
    void buildKernels(Module &module, bool manual) const override;
    void setupCore(unsigned core, NvmSystem &system) override;
    bool next(unsigned core, SparseMemory &mem, std::string &fn,
              std::vector<std::uint64_t> &args) override;
    void validate(const SparseMemory &mem,
                  unsigned core) const override;
    void validateRecovered(const SparseMemory &mem,
                           unsigned core) const override;

  private:
    unsigned items_;
    /** Expected item seed per slot, per core. */
    std::vector<std::vector<std::uint64_t>> seeds_;
    /** Initial seeds (crash validation compares multisets). */
    std::vector<std::vector<std::uint64_t>> seedsInitial_;
};

} // namespace janus

#endif // JANUS_WORKLOADS_ARRAY_SWAP_HH
