#include "workloads/queue.hh"

#include "common/logging.hh"
#include "ir/builder.hh"
#include "txn/undo_log.hh"

namespace janus
{

void
QueueWorkload::buildKernels(Module &module, bool manual) const
{
    IrBuilder b(module);

    // queue_enqueue(ctx, src): copy an item into the tail slot
    // (per-line loop), then durably bump the tail.
    {
        b.beginFunction("queue_enqueue", 2);
        int ctx_reg = b.arg(0);
        int src = b.arg(1);
        b.txBegin();
        int heap = b.load(ctx_reg, ctx::heap);
        int size = b.load(ctx_reg, ctx::param1);
        int mask = b.load(ctx_reg, ctx::param2);
        int tail = b.load(heap, 8);
        int slot_idx = b.andOp(tail, mask);
        int slot = b.add(b.addI(heap, lineBytes),
                         b.mul(slot_idx, size));
        int new_tail = b.addI(tail, 1);
        if (manual) {
            // Item data and slot address are known here; the tail
            // bump and the commit are fully determined too.
            int pi = b.preInit();
            b.preBothR(pi, slot, src, size);
            int pt = b.preInit();
            int tail_addr = b.addI(heap, 8);
            b.preBothVal(pt, tail_addr, new_tail);
        }
        b.call("undo_append", {ctx_reg, heap, b.constI(16)});
        if (manual) {
            emitCommitPre(b, ctx_reg);
        }
        b.sfence(); // backup step complete

        // Per-line copy loop (defeats the static pass, Fig. 11).
        int offset = b.newReg();
        b.constTo(offset, 0);
        unsigned loop_head = b.newBlock();
        unsigned loop_body = b.newBlock();
        unsigned loop_done = b.newBlock();
        b.br(loop_head);
        b.setBlock(loop_head);
        int more = b.cmpLt(offset, size);
        b.brCond(more, loop_body, loop_done);
        b.setBlock(loop_body);
        int dst_line = b.add(slot, offset);
        int src_line = b.add(src, offset);
        b.memCpy(dst_line, src_line, lineBytes);
        b.clwb(dst_line, lineBytes);
        int next_off = b.addI(offset, lineBytes);
        b.movTo(offset, next_off);
        b.br(loop_head);
        b.setBlock(loop_done);

        // Item lines precede the tail bump in the write queue, so a
        // single fence after the bump is the commit of the enqueue.
        b.store(heap, new_tail, 8);
        b.clwb(heap, 16);
        b.sfence();
        b.call("tx_finish", {ctx_reg});
        b.txEnd();
        b.ret();
        b.endFunction();
    }

    // queue_dequeue(ctx): read the head item and durably bump head.
    {
        b.beginFunction("queue_dequeue", 1);
        int ctx_reg = b.arg(0);
        b.txBegin();
        int heap = b.load(ctx_reg, ctx::heap);
        int size = b.load(ctx_reg, ctx::param1);
        int mask = b.load(ctx_reg, ctx::param2);
        int head = b.load(heap, 0);
        int slot_idx = b.andOp(head, mask);
        int slot = b.add(b.addI(heap, lineBytes),
                         b.mul(slot_idx, size));
        int new_head = b.addI(head, 1);
        if (manual) {
            int ph = b.preInit();
            b.preBothVal(ph, heap, new_head);
        }
        // Consume the item (one load per line).
        int offset = b.newReg();
        b.constTo(offset, 0);
        unsigned loop_head = b.newBlock();
        unsigned loop_body = b.newBlock();
        unsigned loop_done = b.newBlock();
        b.br(loop_head);
        b.setBlock(loop_head);
        int more = b.cmpLt(offset, size);
        b.brCond(more, loop_body, loop_done);
        b.setBlock(loop_body);
        int line = b.add(slot, offset);
        b.load(line, 0);
        int next_off = b.addI(offset, lineBytes);
        b.movTo(offset, next_off);
        b.br(loop_head);
        b.setBlock(loop_done);

        b.call("undo_append", {ctx_reg, heap, b.constI(16)});
        if (manual) {
            emitCommitPre(b, ctx_reg);
        }
        b.sfence();
        b.store(heap, new_head, 0);
        b.clwb(heap, 8);
        b.sfence();
        b.call("tx_finish", {ctx_reg});
        b.txEnd();
        b.ret();
        b.endFunction();
    }
}

void
QueueWorkload::setupCore(unsigned core, NvmSystem &system)
{
    janus_assert((capacity_ & (capacity_ - 1)) == 0,
                 "queue capacity must be a power of two");
    const Addr item_bytes = params_.valueBytes;
    CoreState &cs = allocCommon(core, system,
                                lineBytes + capacity_ * item_bytes,
                                lineBytes, item_bytes);
    SparseMemory &mem = system.mem();
    mem.writeWord(cs.ctx + ctx::param1, item_bytes);
    mem.writeWord(cs.ctx + ctx::param2, capacity_ - 1);
    mem.writeWord(cs.heap + 0, 0); // head
    mem.writeWord(cs.heap + 8, 0); // tail
    if (mirror_.size() <= core) {
        mirror_.resize(core + 1);
        slotHistory_.resize(core + 1);
    }
    mirror_[core].clear();
    slotHistory_[core].assign(capacity_, {});
    if (enqueues_.size() <= core)
        enqueues_.resize(core + 1);
    enqueues_[core] = 0;
}

bool
QueueWorkload::next(unsigned core, SparseMemory &mem, std::string &fn,
                    std::vector<std::uint64_t> &args)
{
    CoreState &cs = cores_.at(core);
    if (cs.txnsLeft == 0)
        return false;
    --cs.txnsLeft;
    auto &mirror = mirror_[core];
    bool can_enqueue = mirror.size() < capacity_ - 1;
    bool do_enqueue =
        can_enqueue && (mirror.empty() || cs.rng.chance(0.55));
    if (do_enqueue) {
        Addr src = stageValue(core, mem);
        // The slot this enqueue lands in: the kernel's tail counter
        // equals the number of enqueues issued so far.
        slotHistory_[core][enqueues_[core] & (capacity_ - 1)]
            .push_back(lastValueSeed(core));
        ++enqueues_[core];
        mirror.push_back(lastValueSeed(core));
        fn = "queue_enqueue";
        args = {cs.ctx, src};
    } else {
        mirror.pop_front();
        fn = "queue_dequeue";
        args = {cs.ctx};
    }
    return true;
}

void
QueueWorkload::validateRecovered(const SparseMemory &mem,
                                 unsigned core) const
{
    const CoreState &cs = cores_.at(core);
    std::uint64_t head = mem.readWord(cs.heap + 0);
    std::uint64_t tail = mem.readWord(cs.heap + 8);
    janus_assert(head <= tail && tail - head < capacity_,
                 "queue core %u: recovered indices invalid", core);
    for (std::uint64_t k = head; k < tail; ++k) {
        unsigned slot = static_cast<unsigned>(k & (capacity_ - 1));
        Addr addr = cs.heap + lineBytes + slot * params_.valueBytes;
        const auto &hist = slotHistory_[core][slot];
        bool ok = false;
        for (std::uint64_t seed : hist)
            ok = ok || checkValue(mem, addr, seed);
        janus_assert(ok, "queue core %u: recovered slot %u holds a "
                         "value never enqueued", core, slot);
    }
}

void
QueueWorkload::validate(const SparseMemory &mem, unsigned core) const
{
    const CoreState &cs = cores_.at(core);
    std::uint64_t head = mem.readWord(cs.heap + 0);
    std::uint64_t tail = mem.readWord(cs.heap + 8);
    const auto &mirror = mirror_[core];
    janus_assert(tail - head == mirror.size(),
                 "queue core %u: occupancy %llu vs mirror %zu", core,
                 static_cast<unsigned long long>(tail - head),
                 mirror.size());
    for (std::size_t k = 0; k < mirror.size(); ++k) {
        Addr slot = cs.heap + lineBytes +
                    ((head + k) & (capacity_ - 1)) *
                        params_.valueBytes;
        janus_assert(checkValue(mem, slot, mirror[k]),
                     "queue core %u: element %zu mismatch", core, k);
    }
}

} // namespace janus
