/**
 * @file
 * TPC-C New-Order (Table 4): append an order record with four order
 * lines and durably advance the district's next-order id [92]. The
 * order id comes from one load at entry, so addresses and data are
 * known early and the transaction writes a sizable payload — the
 * profile behind TPCC's strong Janus gains in the paper's Figure 9.
 */

#ifndef JANUS_WORKLOADS_TPCC_HH
#define JANUS_WORKLOADS_TPCC_HH

#include "workloads/workload.hh"

namespace janus
{

/** See file comment. */
class TpccWorkload : public Workload
{
  public:
    explicit TpccWorkload(const WorkloadParams &params)
        : Workload(params)
    {}

    std::string name() const override { return "tpcc"; }
    void buildKernels(Module &module, bool manual) const override;
    void setupCore(unsigned core, NvmSystem &system) override;
    bool next(unsigned core, SparseMemory &mem, std::string &fn,
              std::vector<std::uint64_t> &args) override;
    void validate(const SparseMemory &mem,
                  unsigned core) const override;
    void validateRecovered(const SparseMemory &mem,
                           unsigned core) const override;

    static constexpr unsigned orderLines = 4;

  private:
    struct Order
    {
        std::uint64_t customer;
        std::vector<std::uint64_t> lineSeeds;
    };
    std::vector<std::vector<Order>> mirror_;
};

} // namespace janus

#endif // JANUS_WORKLOADS_TPCC_HH
