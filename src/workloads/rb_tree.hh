/**
 * @file
 * RB-Tree (Table 4): a real red-black tree (CLRS insert with
 * recolorings and rotations) maintained crash-consistently. The
 * structural writes happen inside the fixup loop through chased
 * pointers, so neither the static compiler pass (Figure 11) nor
 * address pre-execution (Figure 9) has much room — exactly the
 * behaviour the paper reports for RB-Tree.
 */

#ifndef JANUS_WORKLOADS_RB_TREE_HH
#define JANUS_WORKLOADS_RB_TREE_HH

#include <map>

#include "workloads/workload.hh"

namespace janus
{

/** See file comment. */
class RbTreeWorkload : public Workload
{
  public:
    explicit RbTreeWorkload(const WorkloadParams &params)
        : Workload(params)
    {}

    std::string name() const override { return "rb_tree"; }
    void buildKernels(Module &module, bool manual) const override;
    void setupCore(unsigned core, NvmSystem &system) override;
    bool next(unsigned core, SparseMemory &mem, std::string &fn,
              std::vector<std::uint64_t> &args) override;
    void validate(const SparseMemory &mem,
                  unsigned core) const override;
    void validateRecovered(const SparseMemory &mem,
                           unsigned core) const override;

  private:
    /** Native invariant check; returns the subtree's black height. */
    unsigned checkSubtree(const SparseMemory &mem, Addr node,
                          Addr parent, std::uint64_t lo,
                          std::uint64_t hi, unsigned core,
                          unsigned *count) const;

    /** key -> value seed, per core. */
    std::vector<std::map<std::uint64_t, std::uint64_t>> mirror_;
};

} // namespace janus

#endif // JANUS_WORKLOADS_RB_TREE_HH
