/**
 * @file
 * Hash Table (Table 4): chained buckets; each transaction updates
 * the value of an existing key in place under undo logging. The
 * update location comes from a pointer-chasing chain walk, so the
 * address-dependent pre-execution window is short (the effect behind
 * Hash Table's lower gain in the paper's Figure 9), while the value
 * is known at entry (classic PRE_DATA-then-PRE_ADDR usage, Fig. 8a).
 */

#ifndef JANUS_WORKLOADS_HASH_TABLE_HH
#define JANUS_WORKLOADS_HASH_TABLE_HH

#include <unordered_map>

#include "workloads/workload.hh"

namespace janus
{

/** See file comment. */
class HashTableWorkload : public Workload
{
  public:
    explicit HashTableWorkload(const WorkloadParams &params,
                               unsigned buckets = 4096,
                               unsigned keys = 16384)
        : Workload(params), buckets_(buckets), keys_(keys)
    {}

    std::string name() const override { return "hash_table"; }
    void buildKernels(Module &module, bool manual) const override;
    void setupCore(unsigned core, NvmSystem &system) override;
    bool next(unsigned core, SparseMemory &mem, std::string &fn,
              std::vector<std::uint64_t> &args) override;
    void validate(const SparseMemory &mem,
                  unsigned core) const override;
    void validateRecovered(const SparseMemory &mem,
                           unsigned core) const override;

  private:
    unsigned buckets_; ///< power of two
    unsigned keys_;
    /** key -> expected value seed, per core. */
    std::vector<std::unordered_map<std::uint64_t, std::uint64_t>>
        mirror_;
    /** key -> every seed it ever held, per core. */
    std::vector<std::unordered_map<std::uint64_t,
                                   std::vector<std::uint64_t>>>
        history_;
    /** insertion-ordered key list for random picks, per core. */
    std::vector<std::vector<std::uint64_t>> keyList_;
};

} // namespace janus

#endif // JANUS_WORKLOADS_HASH_TABLE_HH
