/**
 * @file
 * WAL appender workload family: each transaction appends one record
 * to a per-core write-ahead log through one of the four log-writer
 * variants (see log/log_writer.hh). The family exists to exercise
 * the WAL engine end to end — sequential persist streams, torn-tail
 * crash recovery, and fence amortization under controller-side group
 * commit (WorkloadParams::walGroup fences every G records).
 */

#ifndef JANUS_WORKLOADS_WAL_APPEND_HH
#define JANUS_WORKLOADS_WAL_APPEND_HH

#include "log/log_writer.hh"
#include "workloads/workload.hh"

namespace janus
{

/** See file comment. */
class WalAppendWorkload : public Workload
{
  public:
    WalAppendWorkload(const WorkloadParams &params, LogVariant variant)
        : Workload(params), variant_(variant)
    {}

    std::string name() const override
    {
        return std::string("wal_") + logVariantName(variant_);
    }
    void buildKernels(Module &module, bool manual) const override;
    void setupCore(unsigned core, NvmSystem &system) override;
    bool next(unsigned core, SparseMemory &mem, std::string &fn,
              std::vector<std::uint64_t> &args) override;
    void validate(const SparseMemory &mem,
                  unsigned core) const override;
    void validateRecovered(const SparseMemory &mem,
                           unsigned core) const override;
    unsigned recover(SparseMemory &image,
                     unsigned core) const override;

    LogVariant variant() const { return variant_; }
    /** Base of this core's WAL region (the workload's heap). */
    Addr walBase(unsigned core) const { return cores_.at(core).heap; }

  private:
    /** Check one durable record against the deterministic payload. */
    void checkRecord(const WalRecord &rec, unsigned core) const;

    LogVariant variant_;
};

} // namespace janus

#endif // JANUS_WORKLOADS_WAL_APPEND_HH
