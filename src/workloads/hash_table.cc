#include "workloads/hash_table.hh"

#include "common/logging.hh"
#include "ir/builder.hh"
#include "txn/undo_log.hh"

namespace janus
{

namespace
{

/** The mixing the kernel applies (mirrored natively for setup). */
std::uint64_t
mixKey(std::uint64_t key)
{
    std::uint64_t h = key ^ (key >> 33);
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 29;
    return h;
}

constexpr std::int64_t mixMul =
    static_cast<std::int64_t>(0xFF51AFD7ED558CCDull);

} // namespace

void
HashTableWorkload::buildKernels(Module &module, bool manual) const
{
    IrBuilder b(module);
    // hash_update(ctx, key, src): find the key's node by chain walk
    // and durably replace its value.
    b.beginFunction("hash_update", 3);
    int ctx_reg = b.arg(0);
    int key = b.arg(1);
    int src = b.arg(2);
    b.txBegin();
    int heap = b.load(ctx_reg, ctx::heap);
    int size = b.load(ctx_reg, ctx::param1);
    int mask = b.load(ctx_reg, ctx::param2);

    int pre = -1;
    if (manual) {
        // Fig. 8a: the data is known before the lookup resolves the
        // address; issue PRE_DATA now, PRE_ADDR once found.
        pre = b.preInit();
        b.preDataR(pre, src, size);
    }

    // h = mix(key); bucket = &heads[h & mask].
    int h = b.xorOp(key, b.shrI(key, 33));
    h = b.mul(h, b.constI(mixMul));
    h = b.xorOp(h, b.shrI(h, 29));
    int bucket = b.add(heap, b.shlI(b.andOp(h, mask), 3));

    int node = b.newReg();
    b.movTo(node, b.load(bucket, 0));
    unsigned walk = b.newBlock();
    unsigned step = b.newBlock();
    unsigned found = b.newBlock();
    unsigned missing = b.newBlock();
    b.br(walk);
    b.setBlock(walk);
    int is_null = b.cmpEq(node, b.constI(0));
    b.brCond(is_null, missing, step);
    b.setBlock(step);
    int k = b.load(node, 0);
    int hit = b.cmpEq(k, key);
    unsigned advance = b.newBlock();
    b.brCond(hit, found, advance);
    b.setBlock(advance);
    b.movTo(node, b.load(node, 8));
    b.br(walk);

    b.setBlock(missing);
    b.txEnd();
    b.ret(); // driver guarantees presence; tolerate gracefully

    b.setBlock(found);
    int val = b.addI(node, lineBytes);
    if (manual)
        b.preAddrR(pre, val, size);
    b.call("undo_append", {ctx_reg, val, size});
    if (manual) {
        emitCommitPre(b, ctx_reg);
    }
    b.sfence(); // backup step complete
    b.memCpyR(val, src, size);
    b.clwbR(val, size);
    b.sfence();
    b.call("tx_finish", {ctx_reg});
    b.txEnd();
    b.ret();
    b.endFunction();
}

void
HashTableWorkload::setupCore(unsigned core, NvmSystem &system)
{
    janus_assert((buckets_ & (buckets_ - 1)) == 0,
                 "bucket count must be a power of two");
    const Addr node_bytes = lineBytes + params_.valueBytes;
    CoreState &cs = allocCommon(core, system, buckets_ * 8,
                                lineBytes, params_.valueBytes);
    SparseMemory &mem = system.mem();
    mem.writeWord(cs.ctx + ctx::param1, params_.valueBytes);
    mem.writeWord(cs.ctx + ctx::param2, buckets_ - 1);

    Addr nodes = system.allocatorFor(core).alloc(keys_ * node_bytes);
    warmRegion(system, core, nodes, keys_ * node_bytes);
    if (mirror_.size() <= core) {
        mirror_.resize(core + 1);
        keyList_.resize(core + 1);
        history_.resize(core + 1);
    }
    mirror_[core].clear();
    keyList_[core].clear();
    history_[core].clear();

    for (unsigned n = 0; n < keys_; ++n) {
        std::uint64_t k =
            (std::uint64_t(core + 1) << 48) | (n * 2654435761u + 1);
        std::uint64_t seed =
            (std::uint64_t(core + 1) << 40) | ++cs.uniqueCounter;
        Addr node = nodes + n * node_bytes;
        Addr bucket =
            cs.heap + (mixKey(k) & (buckets_ - 1)) * 8;
        mem.writeWord(node + 0, k);
        mem.writeWord(node + 8, mem.readWord(bucket)); // chain head
        writeValue(mem, node + lineBytes, seed);
        mem.writeWord(bucket, node);
        mirror_[core][k] = seed;
        history_[core][k].push_back(seed);
        keyList_[core].push_back(k);
    }
}

bool
HashTableWorkload::next(unsigned core, SparseMemory &mem,
                        std::string &fn,
                        std::vector<std::uint64_t> &args)
{
    CoreState &cs = cores_.at(core);
    if (cs.txnsLeft == 0)
        return false;
    --cs.txnsLeft;
    std::uint64_t key =
        keyList_[core][cs.rng.below(keyList_[core].size())];
    Addr src = stageValue(core, mem);
    mirror_[core][key] = lastValueSeed(core);
    history_[core][key].push_back(lastValueSeed(core));
    fn = "hash_update";
    args = {cs.ctx, key, src};
    return true;
}

void
HashTableWorkload::validateRecovered(const SparseMemory &mem,
                                     unsigned core) const
{
    const CoreState &cs = cores_.at(core);
    for (const auto &[key, hist] : history_[core]) {
        Addr bucket = cs.heap + (mixKey(key) & (buckets_ - 1)) * 8;
        Addr node = mem.readWord(bucket);
        while (node != 0 && mem.readWord(node) != key)
            node = mem.readWord(node + 8);
        janus_assert(node != 0,
                     "hash core %u: key %llx missing after recovery",
                     core, static_cast<unsigned long long>(key));
        bool ok = false;
        for (std::uint64_t seed : hist)
            ok = ok || checkValue(mem, node + lineBytes, seed);
        janus_assert(ok, "hash core %u: key %llx holds a value it "
                         "never had", core,
                     static_cast<unsigned long long>(key));
    }
}

void
HashTableWorkload::validate(const SparseMemory &mem,
                            unsigned core) const
{
    const CoreState &cs = cores_.at(core);
    for (const auto &[key, seed] : mirror_[core]) {
        Addr bucket = cs.heap + (mixKey(key) & (buckets_ - 1)) * 8;
        Addr node = mem.readWord(bucket);
        while (node != 0 && mem.readWord(node) != key)
            node = mem.readWord(node + 8);
        janus_assert(node != 0, "hash core %u: key %llx missing",
                     core, static_cast<unsigned long long>(key));
        janus_assert(checkValue(mem, node + lineBytes, seed),
                     "hash core %u: key %llx wrong value", core,
                     static_cast<unsigned long long>(key));
    }
}

} // namespace janus
