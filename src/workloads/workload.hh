/**
 * @file
 * Workload framework: the seven crash-consistent NVM applications of
 * the paper's Table 4, each consisting of (a) PmIR transaction
 * kernels in uninstrumented and manually-instrumented flavors, (b) a
 * native driver that prepares per-core state and per-transaction
 * arguments, and (c) a native validator that checks the data
 * structure's invariants after a run.
 */

#ifndef JANUS_WORKLOADS_WORKLOAD_HH
#define JANUS_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "harness/system.hh"
#include "ir/ir.hh"

namespace janus
{

/** Workload knobs shared by all seven applications. */
struct WorkloadParams
{
    /** Per-transaction update payload (Figure 13 sweeps this). */
    std::uint64_t valueBytes = 64;
    /** Probability that a staged value repeats an earlier one. */
    double dupRatio = 0.5;
    /** Transactions each core executes. */
    unsigned txnsPerCore = 200;
    std::uint64_t seed = 1;
    /** WAL workloads: fence every G appended records (the final
     *  record always fences). 1 = fence per record; larger groups
     *  let controller-side group commit amortize the ordering
     *  cost (see SystemConfig::groupCommitK). */
    unsigned walGroup = 1;
};

/** Base class for the seven applications. */
class Workload
{
  public:
    explicit Workload(const WorkloadParams &params) : params_(params) {}
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** Emit this workload's kernels (the txn library is added by the
     *  harness). @p manual selects hand-placed PRE_* calls. */
    virtual void buildKernels(Module &module, bool manual) const = 0;

    /** Allocate and initialize this core's structures. */
    virtual void setupCore(unsigned core, NvmSystem &system) = 0;

    /**
     * Produce the next transaction for a core.
     * @return false when the core's quota is exhausted.
     */
    virtual bool next(unsigned core, SparseMemory &mem,
                      std::string &fn,
                      std::vector<std::uint64_t> &args) = 0;

    /** Panics if the core's structure violates its invariants. */
    virtual void validate(const SparseMemory &mem,
                          unsigned core) const = 0;

    /**
     * Panics unless the (crash-recovered) image is a state this
     * workload could legally expose at *some* transaction boundary:
     * structural invariants hold and every value is one this slot
     * legitimately held at some point. Called by the crash tests
     * after undo-log rollback.
     */
    virtual void validateRecovered(const SparseMemory &mem,
                                   unsigned core) const = 0;

    /**
     * Run this workload's crash-recovery procedure on a durable
     * image: undo-log rollback by default; the WAL workloads
     * truncate their torn tail instead (see log/log_writer.hh).
     * @return transactions rolled back / records truncated.
     */
    virtual unsigned recover(SparseMemory &image, unsigned core) const;

    /** Convenience: a TxnSource bound to one core. */
    TxnSource source(unsigned core, NvmSystem &system);

    /** This core's undo-log region (crash tests parse it). */
    Addr logBase(unsigned core) const { return cores_.at(core).log; }
    /** This core's context block. */
    Addr ctxAddr(unsigned core) const { return cores_.at(core).ctx; }

    const WorkloadParams &params() const { return params_; }

  protected:
    /** Per-core plumbing common to every workload. */
    struct CoreState
    {
        Addr ctx = 0;
        Addr log = 0;
        Addr heap = 0;
        Addr scratch = 0;
        Addr pool = 0;
        Rng rng{1};
        unsigned txnsLeft = 0;
        /** Recently staged value seeds (duplication source). */
        std::vector<std::uint64_t> history;
        std::uint64_t uniqueCounter = 0;
        /** Seeds staged by this core's last stageValues() call.
         *  Per-core so concurrent shard workers never share it. */
        std::vector<std::uint64_t> lastSeeds;
    };

    /**
     * Allocate log/heap/scratch/pool regions plus the context block
     * and fill the context fields. Returns the new core state.
     */
    CoreState &allocCommon(unsigned core, NvmSystem &system,
                           Addr heap_bytes, Addr scratch_bytes,
                           Addr pool_bytes, Addr log_bytes = 0);

    /**
     * Stage the next value payload (valueBytes) into the core's
     * pool slot, honoring the configured duplicate ratio.
     * @return the pool slot address.
     */
    Addr stageValue(unsigned core, SparseMemory &mem);

    /** The seed most recently used by stageValue. */
    std::uint64_t lastValueSeed(unsigned core) const
    {
        return cores_.at(core).history.back();
    }

    /**
     * Stage @p count consecutive value payloads into the pool slot
     * (the pool region must be sized accordingly).
     * @return the pool base; seeds are in lastValueSeeds(core).
     */
    Addr stageValues(unsigned core, SparseMemory &mem, unsigned count);

    /** Seeds staged by the core's last stageValues() call. */
    const std::vector<std::uint64_t> &lastValueSeeds(unsigned core) const
    {
        return cores_.at(core).lastSeeds;
    }

    /** Draw the next value seed (honors the duplicate ratio). */
    std::uint64_t nextSeed(unsigned core);

    /**
     * Pre-warm a core's L2 tags over a region, so short measurement
     * runs see the steady-state locality a long-running service
     * would (the paper's multi-million-instruction runs are warm).
     */
    void warmRegion(NvmSystem &system, unsigned core, Addr base,
                    Addr bytes) const;

    /** Write valueBytes derived from a seed at an address. */
    void writeValue(SparseMemory &mem, Addr addr,
                    std::uint64_t seed) const;

    /** Check valueBytes at an address against a seed. */
    bool checkValue(const SparseMemory &mem, Addr addr,
                    std::uint64_t seed) const;

    WorkloadParams params_;
    std::vector<CoreState> cores_;
};

/** Factory: build one of the seven workloads by Table 4 name
 *  ("array_swap", "queue", "hash_table", "rb_tree", "b_tree",
 *  "tatp", "tpcc"). */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       const WorkloadParams &params);

/** All Table 4 workload names, in the paper's order. */
const std::vector<std::string> &allWorkloadNames();

/** The WAL appender family ("wal_classic", "wal_zero_cached",
 *  "wal_header_dancing", "wal_mnemosyne") — kept out of
 *  allWorkloadNames() so existing sweeps are unchanged. */
const std::vector<std::string> &walWorkloadNames();

} // namespace janus

#endif // JANUS_WORKLOADS_WORKLOAD_HH
