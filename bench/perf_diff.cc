/**
 * @file
 * perf_diff: noise-aware BENCH_*.json comparator — the perf
 * regression sentinel CI runs against a committed bench/baselines/
 * snapshot.
 *
 *   perf_diff <baseline_dir> <current_dir> [--tolerance=0.10]
 *             [--warn-only]
 *
 * For every BENCH_*.json in the baseline directory it loads the
 * same-named report from the current directory and
 *
 *  1. HARD-FAILS (exit 2, never downgraded) on structural
 *     violations: unreadable/invalid JSON, schema_version mismatch,
 *     seed_override mismatch (different work is not comparable), a
 *     critical_path whose edge shares do not sum to 1, or whose
 *     edge nanoseconds do not partition total_ns, or a stage sum
 *     (bmo+queue+order) that disagrees with avg_write_latency_ns;
 *  2. flags REGRESSIONS (exit 1, or exit 0 with --warn-only): any
 *     deterministic numeric metric differing from the baseline by
 *     more than the relative tolerance band. Host-noise fields
 *     (wall_seconds, events_per_second) and derived shares are
 *     informational and never gated.
 *
 * Experiments are matched by label, metrics by JSON path, so adding
 * new fields or experiments never fails the gate — only changed or
 * vanished ones do.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/json.hh"

namespace
{

using janus::JsonValue;

struct Options
{
    std::string baselineDir;
    std::string currentDir;
    double tolerance = 0.10;
    bool warnOnly = false;
};

struct Report
{
    unsigned regressions = 0;
    unsigned hardFailures = 0;
    unsigned compared = 0;

    void
    hard(const std::string &what)
    {
        ++hardFailures;
        std::printf("HARD-FAIL  %s\n", what.c_str());
    }

    void
    regress(const std::string &what)
    {
        ++regressions;
        std::printf("REGRESSION %s\n", what.c_str());
    }
};

/** Keys whose values depend on the host, not the simulation. */
bool
noisyKey(const std::string &key)
{
    return key == "wall_seconds" || key == "sim_seconds" ||
           key == "events_per_second";
}

/** Derived values checked by invariants, not tolerance bands. */
bool
derivedKey(const std::string &key)
{
    return key == "share" || key == "share_sum";
}

/**
 * Structural invariants of one report. `where` names the file for
 * messages. Returns false when a hard violation was recorded.
 */
void
checkInvariants(const JsonValue &doc, const std::string &where,
                Report &report)
{
    const JsonValue *experiments = doc.get("experiments");
    if (experiments == nullptr || !experiments->isArray())
        return;
    for (const JsonValue &exp : experiments->asArray()) {
        std::string label = exp.has("label")
                                ? exp["label"].asString()
                                : "<unlabeled>";
        const JsonValue *cp = exp.get("critical_path");
        if (cp == nullptr)
            continue;
        double persists = (*cp)["persists"].asNumber();
        double total_ns = (*cp)["total_ns"].asNumber();
        double share_sum = (*cp)["share_sum"].asNumber();
        // No persists, or only zero-latency persists (ideal-hardware
        // configs): nothing to partition, shares are all zero.
        if (persists == 0 || total_ns == 0)
            continue;
        // Exact-partition invariant, modulo %.1f print rounding of
        // each edge (<= 0.05 ns apiece).
        if (std::fabs(share_sum - 1.0) > 1e-6)
            report.hard(where + " [" + label +
                        "]: critical-path share_sum " +
                        std::to_string(share_sum) + " != 1");
        double edge_ns = 0;
        for (const auto &[name, edge] : (*cp)["edges"].members())
            edge_ns += edge["ns"].asNumber();
        double slack =
            0.05 * static_cast<double>((*cp)["edges"].size()) + 0.05;
        if (std::fabs(edge_ns - total_ns) > slack)
            report.hard(where + " [" + label +
                        "]: critical-path edges sum to " +
                        std::to_string(edge_ns) + " ns, total is " +
                        std::to_string(total_ns));
        // The 3-stage decomposition must agree with the mean persist
        // latency (stage fields print as %.2f).
        if (exp.has("avg_write_latency_ns")) {
            double stages = exp["stage_bmo_ns"].asNumber() +
                            exp["stage_queue_ns"].asNumber() +
                            exp["stage_order_ns"].asNumber();
            double avg = exp["avg_write_latency_ns"].asNumber();
            if (std::fabs(stages - avg) > 0.05)
                report.hard(where + " [" + label +
                            "]: stage sum " + std::to_string(stages) +
                            " != avg_write_latency_ns " +
                            std::to_string(avg));
        }
    }
}

/** Relative difference with a zero-safe denominator. */
double
relDiff(double base, double cur)
{
    double denom = std::fmax(std::fabs(base), std::fabs(cur));
    if (denom == 0)
        return 0;
    return std::fabs(cur - base) / denom;
}

/**
 * Walk two values in parallel and flag numeric members whose
 * relative difference exceeds the tolerance. Arrays of objects with
 * "label" members match by label; other arrays match by index.
 */
void
compareValues(const JsonValue &base, const JsonValue &cur,
              const std::string &path, const Options &opt,
              Report &report)
{
    if (base.isNumber() && cur.isNumber()) {
        ++report.compared;
        double b = base.asNumber();
        double c = cur.asNumber();
        if (relDiff(b, c) > opt.tolerance)
            report.regress(path + ": " + std::to_string(b) + " -> " +
                           std::to_string(c));
        return;
    }
    if (base.isObject() && cur.isObject()) {
        for (const auto &[key, value] : base.members()) {
            if (noisyKey(key) || derivedKey(key))
                continue;
            const JsonValue *other = cur.get(key);
            if (other == nullptr) {
                report.regress(path + "." + key +
                               ": present in baseline, missing now");
                continue;
            }
            compareValues(value, *other, path + "." + key, opt,
                          report);
        }
        return;
    }
    if (base.isArray() && cur.isArray()) {
        // Label-keyed experiment arrays match by label so inserting
        // an experiment doesn't misalign the rest.
        bool labeled =
            base.size() > 0 && base.at(0).isObject() &&
            base.at(0).has("label");
        if (labeled) {
            for (const JsonValue &bexp : base.asArray()) {
                const std::string &label = bexp["label"].asString();
                const JsonValue *match = nullptr;
                for (const JsonValue &cexp : cur.asArray())
                    if (cexp.isObject() && cexp.has("label") &&
                        cexp["label"].asString() == label) {
                        match = &cexp;
                        break;
                    }
                if (match == nullptr) {
                    report.regress(path + "[" + label +
                                   "]: experiment vanished");
                    continue;
                }
                compareValues(bexp, *match, path + "[" + label + "]",
                              opt, report);
            }
            return;
        }
        for (std::size_t i = 0;
             i < base.size() && i < cur.size(); ++i)
            compareValues(base.at(i), cur.at(i),
                          path + "[" + std::to_string(i) + "]", opt,
                          report);
        return;
    }
    // Kind changed (e.g. number -> string): structural break.
    if (base.kind() != cur.kind())
        report.hard(path + ": value kind changed");
}

void
compareFile(const std::filesystem::path &base_path,
            const std::filesystem::path &cur_path,
            const Options &opt, Report &report)
{
    const std::string name = base_path.filename().string();
    JsonValue base, cur;
    try {
        base = janus::parseJsonFile(base_path.string());
    } catch (const janus::JsonError &e) {
        report.hard(name + " (baseline): " + e.what());
        return;
    }
    if (!std::filesystem::exists(cur_path)) {
        report.regress(name + ": no current report (bench not run?)");
        return;
    }
    try {
        cur = janus::parseJsonFile(cur_path.string());
    } catch (const janus::JsonError &e) {
        report.hard(name + ": " + e.what());
        return;
    }

    // Schema gate: refuse apples-to-oranges comparisons outright.
    const JsonValue *bs = base.get("schema_version");
    const JsonValue *cs = cur.get("schema_version");
    if (bs == nullptr || cs == nullptr ||
        bs->asNumber() != cs->asNumber()) {
        report.hard(name + ": schema_version mismatch (baseline " +
                    (bs ? std::to_string(bs->asNumber()) : "absent") +
                    ", current " +
                    (cs ? std::to_string(cs->asNumber()) : "absent") +
                    ") — regenerate bench/baselines/");
        return;
    }
    // Same for the seed: different seeds simulate different work.
    const JsonValue *bseed = base.get("seed_override");
    const JsonValue *cseed = cur.get("seed_override");
    bool bnull = bseed == nullptr || bseed->isNull();
    bool cnull = cseed == nullptr || cseed->isNull();
    if (bnull != cnull ||
        (!bnull && bseed->asNumber() != cseed->asNumber())) {
        report.hard(name + ": seed_override mismatch — runs are not "
                           "comparable");
        return;
    }

    checkInvariants(cur, name, report);
    checkInvariants(base, name + " (baseline)", report);
    compareValues(base, cur, name, opt, report);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    std::vector<std::string> dirs;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--tolerance=", 12) == 0)
            opt.tolerance = std::strtod(arg + 12, nullptr);
        else if (std::strcmp(arg, "--warn-only") == 0)
            opt.warnOnly = true;
        else
            dirs.emplace_back(arg);
    }
    if (dirs.size() != 2) {
        std::fprintf(stderr,
                     "usage: perf_diff <baseline_dir> <current_dir> "
                     "[--tolerance=0.10] [--warn-only]\n");
        return 2;
    }
    opt.baselineDir = dirs[0];
    opt.currentDir = dirs[1];

    Report report;
    std::vector<std::filesystem::path> baselines;
    for (const auto &entry :
         std::filesystem::directory_iterator(opt.baselineDir)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) == 0 &&
            name.size() > 5 &&
            name.substr(name.size() - 5) == ".json")
            baselines.push_back(entry.path());
    }
    std::sort(baselines.begin(), baselines.end());
    if (baselines.empty()) {
        std::fprintf(stderr, "perf_diff: no BENCH_*.json in %s\n",
                     opt.baselineDir.c_str());
        return 2;
    }
    for (const auto &path : baselines)
        compareFile(path,
                    std::filesystem::path(opt.currentDir) /
                        path.filename(),
                    opt, report);

    std::printf("perf_diff: %u metrics compared, %u regressions, "
                "%u hard failures (tolerance %.0f%%%s)\n",
                report.compared, report.regressions,
                report.hardFailures, opt.tolerance * 100,
                opt.warnOnly ? ", warn-only" : "");
    if (report.hardFailures > 0)
        return 2;
    if (report.regressions > 0 && !opt.warnOnly)
        return 1;
    return 0;
}
