/**
 * @file
 * interference: overload-robustness sweep — open-loop mixed-tenant
 * traffic (tenant_mix: readers / page flusher / log writer) against
 * the controller's admission + QoS layer.
 *
 * The bench first calibrates the machine's closed-loop service rate
 * (transactions per microsecond per core with every core running),
 * then offers open-loop Poisson load at factors of that rate, with
 * and without the QoS layer, plus bursty and diurnal-ramp arrival
 * shapes at the knee. Per-tenant response-time tails land in
 * BENCH_interference.json ("tenants" arrays).
 *
 *   interference [--smoke] [--gate] [--seed=N] [--shards=N]
 *                [--shard-threads=N] [--shard-policy=P]
 *
 *   --smoke  tiny matrix (CI: load {0.8, 1.5} x {unshaped, shaped})
 *   --gate   exit 1 unless degradation is graceful: at 1.5x writer
 *            load the shaped run keeps the priority-0 tenants'
 *            p999 response time within 2x of their own pre-knee
 *            (0.8x) p999 while the unshaped run's priority-0 p999
 *            blows past 10x — and the per-tenant books balance
 *            (offered == completed + shed + rejected) everywhere.
 *
 * The load axis is asymmetric: reader cores always arrive at a
 * comfortable 0.7x of the calibrated rate; the sweep multiplies
 * only the writer classes (page flusher, log writer). A background
 * write surge is exactly the overload QoS exists to contain —
 * sweeping every class together would overload the readers by their
 * own arrival schedules, which no controller policy can fix.
 */

#include "bench_common.hh"

#include <algorithm>
#include <array>

#include "workloads/tenant_mix.hh"

int
main(int argc, char **argv)
{
    using namespace janus;
    using namespace janus::bench;

    bool smoke = false;
    bool gate = false;
    parseBenchFlags(
        argc, argv,
        {{"--smoke", [&smoke](const char *) { smoke = true; }},
         {"--gate", [&gate](const char *) { gate = true; }}});
    setQuiet(true);

    const unsigned cores = smoke ? 4 : 8; // >= 1 core per role
    const unsigned requests = smoke ? 150 : 400;
    const std::vector<double> loads =
        smoke ? std::vector<double>{0.8, 1.5}
              : std::vector<double>{0.5, 0.8, 1.0, 1.2, 1.5};

    // --- calibrate: closed-loop service rate per core -------------
    RunSpec calib;
    calib.workload = "tenant_mix";
    calib.mode = WritePathMode::Janus;
    calib.instr = Instrumentation::None;
    calib.cores = cores;
    calib.txnsPerCore = requests;
    const ExperimentResult cal = run(calib);
    janus_assert(cal.makespan > 0, "calibration run was empty");
    const double sat_rate_per_us =
        static_cast<double>(requests) /
        (ticks::toNsF(cal.makespan) / 1e3);
    std::printf("interference: calibrated saturation rate "
                "%.4f req/us/core (makespan %.1f us)\n",
                sat_rate_per_us, ticks::toNsF(cal.makespan) / 1e3);

    // --- QoS policy under test ------------------------------------
    // The channel retires persists FIFO, so a large shaping delay on
    // one line head-of-line-blocks every later line — shaping must
    // only bind past the knee. Each tenant's bucket is shared by
    // cores/4 cores per channel; the flusher persists pageLines
    // lines per request. Cap each writer class at ~1.1x the line
    // rate it offers at calibrated saturation: free below the knee,
    // binding above it. Deadlines then shed the backlog that
    // shaping refuses to serve, and the admission bound + watchdog
    // handle queue pressure.
    QosConfig shaped = tenantMixQos();
    const double class_cores = cores / 4.0;
    const double sat_line_interval =
        static_cast<double>(ticks::us) /
        (sat_rate_per_us * class_cores);
    shaped.tenants[3].shapeIntervalTicks = // log_writer: 1 line/req
        static_cast<Tick>(sat_line_interval / 1.1);
    shaped.tenants[3].shapeBurstLines = 8;
    shaped.tenants[3].deadlineTicks = 50 * ticks::us;
    shaped.tenants[2].shapeIntervalTicks = // page_flusher: 4 lines
        static_cast<Tick>(sat_line_interval /
                          (TenantMixWorkload::pageLines * 1.1));
    shaped.tenants[2].shapeBurstLines =
        4 * TenantMixWorkload::pageLines;
    shaped.tenants[2].deadlineTicks = 100 * ticks::us;
    shaped.admissionQueueEntries = 48;
    shaped.retryBackoffTicks = 2 * ticks::us;
    shaped.maxRetries = 6;
    shaped.watchdogEnterPct = 90;
    shaped.watchdogExitPct = 50;
    shaped.watchdogDwellTicks = 20 * ticks::us;

    // Asymmetric offered load: the latency-critical reader classes
    // arrive at a fixed comfortable fraction of their calibrated
    // rate on every cell; the load axis sweeps only the bulk writer
    // classes (flusher + logger) past saturation. That is the
    // scenario QoS exists for — a background-write surge must not
    // take the foreground readers down with it.
    const double reader_load = 0.7;
    auto specFor = [&](double load, bool qos_on,
                       ArrivalProcess process) {
        RunSpec spec = calib;
        spec.openLoop.enabled = true;
        spec.openLoop.process = process;
        spec.openLoop.ratePerUsPerCore = sat_rate_per_us;
        spec.openLoop.requestsPerCore = requests;
        spec.openLoop.rateFactorOfCore.resize(cores);
        for (unsigned c = 0; c < cores; ++c) {
            TenantRole role = tenantMixRole(c);
            bool reader = role == TenantRole::RandomReader ||
                          role == TenantRole::SequentialReader;
            spec.openLoop.rateFactorOfCore[c] =
                reader ? reader_load : load;
        }
        if (qos_on)
            spec.qos = shaped;
        return spec;
    };
    auto label = [](double load, bool qos_on, const char *shape) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%s_%s@%.2fx", shape,
                      qos_on ? "shaped" : "unshaped", load);
        return std::string(buf);
    };

    BenchRunner bench("interference");
    // idx[load][policy]: policy 0 = unshaped, 1 = shaped.
    std::vector<std::array<std::size_t, 2>> idx(loads.size());
    for (std::size_t l = 0; l < loads.size(); ++l)
        for (int q = 0; q < 2; ++q)
            idx[l][q] = bench.add(
                label(loads[l], q == 1, "poisson"),
                specFor(loads[l], q == 1, ArrivalProcess::Poisson));
    std::size_t bursty_idx = 0, ramp_idx = 0;
    if (!smoke) {
        bursty_idx =
            bench.add(label(1.0, true, "bursty"),
                      specFor(1.0, true, ArrivalProcess::Bursty));
        ramp_idx = bench.add(
            label(1.0, true, "ramp"),
            specFor(1.0, true, ArrivalProcess::DiurnalRamp));
    }
    bench.runAll();

    // --- report ---------------------------------------------------
    auto tenantP999 = [](const ExperimentResult &r, unsigned t) {
        return t < r.tenants.size() ? r.tenants[t].p999Ns : 0.0;
    };
    auto hiPriP999 = [&](const ExperimentResult &r) {
        // Worst priority-0 tenant (both reader classes).
        return std::max(tenantP999(r, 0), tenantP999(r, 1));
    };
    std::vector<std::string> cols = {"unshaped", "shaped"};
    printHeader("interference: priority-0 p999 response (us)", cols);
    for (std::size_t l = 0; l < loads.size(); ++l) {
        std::vector<double> row;
        for (int q = 0; q < 2; ++q)
            row.push_back(hiPriP999(bench.result(idx[l][q])) / 1e3);
        printRow(std::to_string(loads[l]) + "x", row);
    }
    printHeader("interference: diverged cores / shed+rejected", cols);
    for (std::size_t l = 0; l < loads.size(); ++l) {
        std::vector<double> row;
        for (int q = 0; q < 2; ++q) {
            const ExperimentResult &r = bench.result(idx[l][q]);
            std::uint64_t dropped = 0;
            for (const OpenLoopTenantStats &t : r.tenants)
                dropped += t.shed + t.rejected;
            row.push_back(static_cast<double>(dropped));
        }
        printRow(std::to_string(loads[l]) + "x", row, " %10.0f");
    }

    bench.writeJson();

    // --- sanity + graceful-degradation gates ----------------------
    bool ok = true;
    for (std::size_t i = 0; i < bench.size(); ++i) {
        for (const OpenLoopTenantStats &t : bench.result(i).tenants) {
            if (t.offered !=
                t.completed + t.shed + t.rejected) {
                std::printf("SANITY FAIL [%zu/%s]: offered %llu != "
                            "completed %llu + shed %llu + rejected "
                            "%llu\n",
                            i, t.name.c_str(),
                            static_cast<unsigned long long>(t.offered),
                            static_cast<unsigned long long>(
                                t.completed),
                            static_cast<unsigned long long>(t.shed),
                            static_cast<unsigned long long>(
                                t.rejected));
                ok = false;
            }
        }
    }
    if (gate) {
        // Pre-knee reference: each policy's own 0.8x point.
        std::size_t pre = 0;
        double best = 1e30;
        for (std::size_t l = 0; l < loads.size(); ++l)
            if (std::fabs(loads[l] - 0.8) < best) {
                best = std::fabs(loads[l] - 0.8);
                pre = l;
            }
        const std::size_t knee = loads.size() - 1; // highest load
        const double shaped_pre =
            hiPriP999(bench.result(idx[pre][1]));
        const double shaped_hot =
            hiPriP999(bench.result(idx[knee][1]));
        const double unshaped_pre =
            hiPriP999(bench.result(idx[pre][0]));
        const double unshaped_hot =
            hiPriP999(bench.result(idx[knee][0]));
        const double shaped_blowup =
            shaped_pre > 0 ? shaped_hot / shaped_pre : 0;
        const double unshaped_blowup =
            unshaped_pre > 0 ? unshaped_hot / unshaped_pre : 0;
        std::printf("interference gate: priority-0 p999 blowup at "
                    "%.1fx load — shaped %.2fx, unshaped %.2fx\n",
                    loads[knee], shaped_blowup, unshaped_blowup);
        if (shaped_blowup > 2.0) {
            std::printf("GATE FAIL: shaped priority-0 p999 degraded "
                        "%.2fx past saturation (limit 2x)\n",
                        shaped_blowup);
            ok = false;
        }
        if (unshaped_blowup < 10.0) {
            std::printf("GATE FAIL: unshaped baseline only degraded "
                        "%.2fx — overload point is not past "
                        "saturation, sweep is not probing the knee\n",
                        unshaped_blowup);
            ok = false;
        }
    }
    if (!smoke) {
        (void)bursty_idx;
        (void)ramp_idx;
    }
    if (!ok)
        return 1;
    std::printf("interference: %s\n",
                gate ? "GATE PASS" : "done");
    return 0;
}
