/**
 * @file
 * Ablation: the streamlined integrity-tree engine (Merkle metadata
 * cache + per-epoch update coalescing + pipelined tree levels)
 * swept over cache size x epoch length x workload. Three series:
 *
 *  - off:    streamlinedIntegrity = false (the PR-5 lazy engine's
 *            timing; functional results are identical by design)
 *  - cache:  node-cache capacity sweep with coalescing disabled
 *            (merkleEpochWrites = 1) so the hit rate isolates the
 *            cache; a 25 ns miss penalty makes hits visible in the
 *            persist tail
 *  - epoch:  epoch-length sweep at a fixed cache so coalescing
 *            isolates the write-window effect
 *
 * Emits BENCH_merkle.json. Exit status enforces the CI sanity gate:
 * on the locality-heavy workloads the tree-node cache must actually
 * hit (> 0 hit rate at the largest capacity).
 */

#include "bench_common.hh"

namespace
{

using namespace janus;
using namespace janus::bench;

ExperimentConfig
pointConfig(const std::string &workload, bool streamlined,
            unsigned cache_nodes, unsigned epoch_writes)
{
    ExperimentConfig config;
    config.workloadName = workload;
    config.workload.txnsPerCore = 300;
    config.sys.mode = WritePathMode::Parallel;
    config.instr = Instrumentation::None;
    config.sys.bmo.streamlinedIntegrity = streamlined;
    config.sys.bmo.merkleCacheNodes = cache_nodes;
    config.sys.bmo.merkleEpochWrites = epoch_writes;
    // A nonzero miss penalty separates hit and miss timing so the
    // sweep shows the cache in the persist tail (the default folds
    // node fetches under the hash latency, as the lazy engine did).
    config.sys.bmo.merkleNodeMissLatency = 25 * ticks::ns;
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    janus::bench::parseBenchFlags(argc, argv);
    setQuiet(true);

    const char *workloads[] = {"queue", "hash_table"};
    const unsigned cache_sizes[] = {0, 16, 64, 256, 1024};
    const unsigned epoch_lengths[] = {1, 8, 64, 512};
    constexpr unsigned kEpochSweepCache = 256;

    BenchRunner bench("merkle");
    struct Series
    {
        std::size_t off;
        std::vector<std::size_t> cache;
        std::vector<std::size_t> epoch;
    };
    std::vector<Series> series;
    for (const char *w : workloads) {
        Series s;
        s.off = bench.add(std::string(w) + "/off",
                          pointConfig(w, false, 0, 1));
        for (unsigned c : cache_sizes)
            s.cache.push_back(bench.add(
                std::string(w) + "/cache" + std::to_string(c),
                pointConfig(w, true, c, 1)));
        for (unsigned e : epoch_lengths)
            s.epoch.push_back(bench.add(
                std::string(w) + "/epoch" + std::to_string(e),
                pointConfig(w, true, kEpochSweepCache, e)));
        series.push_back(std::move(s));
    }
    bench.runAll();

    std::printf("=== Ablation: streamlined integrity-tree engine "
                "(Parallel mode) ===\n");
    bool gate_ok = true;
    for (std::size_t wi = 0; wi < series.size(); ++wi) {
        const Series &s = series[wi];
        const ExperimentResult &off = bench.result(s.off);
        std::printf("\n-- %s --\n", workloads[wi]);
        std::printf("%-14s %9s %9s %12s %12s %12s\n", "point",
                    "hit-rate", "coalesce", "avg w(ns)", "p50(ns)",
                    "p99(ns)");
        std::printf("%-14s %9s %9s %12.0f %12.0f %12.0f\n",
                    "off (lazy)", "-", "-", off.avgWriteLatencyNs,
                    off.persistP50Ns, off.persistP99Ns);
        std::printf("cache sweep (epoch=1, miss=25ns):\n");
        for (std::size_t i = 0; i < s.cache.size(); ++i) {
            const ExperimentResult &r = bench.result(s.cache[i]);
            std::printf("%-14s %8.1f%% %9llu %12.0f %12.0f %12.0f\n",
                        ("cache=" + std::to_string(cache_sizes[i]))
                            .c_str(),
                        100 * r.treeCacheHitRate,
                        static_cast<unsigned long long>(
                            r.merkleCoalescedLevels),
                        r.avgWriteLatencyNs, r.persistP50Ns,
                        r.persistP99Ns);
        }
        std::printf("epoch sweep (cache=%u):\n", kEpochSweepCache);
        for (std::size_t i = 0; i < s.epoch.size(); ++i) {
            const ExperimentResult &r = bench.result(s.epoch[i]);
            std::printf("%-14s %8.1f%% %9llu %12.0f %12.0f %12.0f\n",
                        ("epoch=" + std::to_string(epoch_lengths[i]))
                            .c_str(),
                        100 * r.treeCacheHitRate,
                        static_cast<unsigned long long>(
                            r.merkleCoalescedLevels),
                        r.avgWriteLatencyNs, r.persistP50Ns,
                        r.persistP99Ns);
        }

        // Sanity gate: these workloads rewrite a hot working set, so
        // upper tree nodes must hit once the cache is large enough.
        const ExperimentResult &largest =
            bench.result(s.cache.back());
        if (!(largest.treeCacheHitRate > 0)) {
            std::fprintf(stderr,
                         "%s: tree cache never hit at capacity %u\n",
                         workloads[wi], cache_sizes[4]);
            gate_ok = false;
        }
        // Capacity 0 must behave as a true bypass.
        const ExperimentResult &zero = bench.result(s.cache.front());
        if (zero.treeCacheHits != 0) {
            std::fprintf(stderr,
                         "%s: cache=0 recorded %llu hits\n",
                         workloads[wi],
                         static_cast<unsigned long long>(
                             zero.treeCacheHits));
            gate_ok = false;
        }
    }

    std::printf("\nThe cache sweep holds the epoch window at one "
                "write (no coalescing) so the hit rate isolates\n"
                "the node cache; the epoch sweep holds the cache "
                "fixed so the coalesced-level count isolates\n"
                "the write window. Functional state is identical "
                "across every point (timing-only engine).\n");
    bench.writeJson();
    return gate_ok ? 0 : 1;
}
