/**
 * @file
 * Chaos campaign: every Table 4 workload runs under the online
 * resilience layer with an aggressive seeded fault model — transient
 * read flips, wear-scaled stuck-at cells, IRB ECC faults, dedup
 * table pressure and a hair-trigger BMO watchdog — and the campaign
 * asserts the survival contract:
 *
 *   1. every workload still validates (functional state intact);
 *   2. zero uncorrectable data loss (`resilience.dataLossLines` and
 *      deferred-scrub failures stay 0): retries + ECC + bad-line
 *      remapping absorb every injected fault;
 *   3. the whole campaign is reproducible: the first experiment runs
 *      twice and must produce identical timing and fault counters.
 *
 * The per-workload survival/degradation report lands in
 * BENCH_chaos.json. `--seed=N` (or JANUS_SEED) re-seeds both the
 * workloads and the fault model, reproducing the exact sequence.
 */

#include "bench_common.hh"

namespace
{

using namespace janus;

/** The aggressive fault campaign every workload runs under. */
ResilienceConfig
campaignFaults(std::uint64_t seed)
{
    ResilienceConfig res;
    res.enabled = true;
    res.seed = seed;
    res.faults.transientFlipRate = 0.05;
    res.faults.stuckCellRate = 0.02;
    res.faults.wearFactor = 0.05;
    res.retryBudget = 2;
    res.retryBackoffBase = 50 * ticks::ns;
    // Small spare pool and table limit so remapping and dedup bypass
    // actually fire; a hair-trigger watchdog forces degraded windows.
    res.spareLines = 512;
    res.dedupTableLimit = 64;
    res.watchdogBudget = 120 * ticks::ns;
    res.degradedWindow = 2 * ticks::us;
    res.irbEccFaultRate = 0.01;
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    janus::bench::parseBenchFlags(argc, argv);
    using namespace janus::bench;
    setQuiet(true);

    const std::uint64_t seed = seedOverride().value_or(1);

    BenchRunner bench("chaos");
    std::vector<std::size_t> idx;
    for (const std::string &w : allWorkloadNames()) {
        RunSpec spec;
        spec.workload = w;
        spec.mode = WritePathMode::Janus;
        spec.instr = Instrumentation::Manual;
        spec.txnsPerCore = 150;
        spec.seed = seed;
        spec.wearLeveling = true;
        spec.resilience = campaignFaults(seed);
        idx.push_back(bench.add("chaos/" + w, spec));
    }
    // Reproducibility probe: the first workload again, same seeds.
    RunSpec repro;
    repro.workload = allWorkloadNames().front();
    repro.mode = WritePathMode::Janus;
    repro.instr = Instrumentation::Manual;
    repro.txnsPerCore = 150;
    repro.seed = seed;
    repro.wearLeveling = true;
    repro.resilience = campaignFaults(seed);
    const std::size_t repro_idx = bench.add("repro/first", repro);

    bench.runAll();

    printHeader("Chaos campaign: survival under seeded faults",
                {"injected", "corrected", "retries", "remaps",
                 "degradeUs", "dataLoss"});
    bool survived = true;
    std::uint64_t total_retries = 0, total_remaps = 0;
    std::size_t wi = 0;
    for (const std::string &w : allWorkloadNames()) {
        const ResilienceCounters &rc =
            bench.result(idx[wi]).resilience;
        std::uint64_t injected =
            rc.transientFlipsInjected + rc.stuckCellsInjected;
        std::uint64_t corrected =
            rc.correctedReads + rc.correctedWrites;
        std::uint64_t retries = rc.readRetries + rc.writeRetries;
        total_retries += retries;
        total_remaps += rc.remaps;
        if (rc.dataLossLines != 0 || rc.scrubFailures != 0)
            survived = false;
        printRow(w,
                 {static_cast<double>(injected),
                  static_cast<double>(corrected),
                  static_cast<double>(retries),
                  static_cast<double>(rc.remaps),
                  ticks::toNsF(rc.degradedTicks) / 1e3,
                  static_cast<double>(rc.dataLossLines)},
                 " %10.0f");
        ++wi;
    }

    // Reproducibility: identical makespan and fault counters.
    const ExperimentResult &a = bench.result(idx[0]);
    const ExperimentResult &b = bench.result(repro_idx);
    const bool reproducible =
        a.makespan == b.makespan &&
        a.resilience.transientFlipsInjected ==
            b.resilience.transientFlipsInjected &&
        a.resilience.stuckCellsInjected ==
            b.resilience.stuckCellsInjected &&
        a.resilience.readRetries == b.resilience.readRetries &&
        a.resilience.writeRetries == b.resilience.writeRetries &&
        a.resilience.remaps == b.resilience.remaps &&
        a.resilience.irbEccFaults == b.resilience.irbEccFaults &&
        a.resilience.watchdogTrips == b.resilience.watchdogTrips;

    std::printf("\ncampaign: %llu retries, %llu remaps, seed %llu "
                "-> %s, %s\n",
                static_cast<unsigned long long>(total_retries),
                static_cast<unsigned long long>(total_remaps),
                static_cast<unsigned long long>(seed),
                survived ? "zero data loss"
                         : "DATA LOSS DETECTED",
                reproducible ? "reproducible"
                             : "NOT REPRODUCIBLE");

    bench.writeJson();
    return survived && reproducible ? 0 : 1;
}
