/**
 * @file
 * Table 1 reproduction: the backend-memory-operation inventory and
 * the per-write latency each adds. The configured sub-operation
 * latencies are printed alongside google-benchmark measurements of
 * the *real* crypto primitives this library implements (host time,
 * for reference — the simulator charges the Table 1/3 latencies).
 */

#include <chrono>

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "bmo/bmo_config.hh"
#include "common/cacheline.hh"
#include "crypto/aes128.hh"
#include "crypto/crc32.hh"
#include "crypto/md5.hh"
#include "crypto/sha1.hh"

namespace
{

using namespace janus;

void
BM_Aes128OtpPerLine(benchmark::State &state)
{
    Aes128::Key key{};
    for (unsigned i = 0; i < key.size(); ++i)
        key[i] = static_cast<std::uint8_t>(0xA5 ^ (17 * i));
    Aes128 aes(key);
    std::uint64_t ctr = 0;
    for (auto _ : state) {
        CacheLine otp = aes.otp(++ctr, 0x1000);
        benchmark::DoNotOptimize(otp);
    }
}

void
BM_Sha1PerLine(benchmark::State &state)
{
    CacheLine line = CacheLine::fromSeed(7);
    for (auto _ : state) {
        auto digest = Sha1::hash(line.data(), line.size());
        benchmark::DoNotOptimize(digest);
    }
}

void
BM_Md5PerLine(benchmark::State &state)
{
    CacheLine line = CacheLine::fromSeed(7);
    for (auto _ : state) {
        auto digest = Md5::hash(line.data(), line.size());
        benchmark::DoNotOptimize(digest);
    }
}

void
BM_Crc32PerLine(benchmark::State &state)
{
    CacheLine line = CacheLine::fromSeed(7);
    for (auto _ : state) {
        auto crc = crc32(line.data(), line.size());
        benchmark::DoNotOptimize(crc);
    }
}

BENCHMARK(BM_Aes128OtpPerLine);
BENCHMARK(BM_Sha1PerLine);
BENCHMARK(BM_Md5PerLine);
BENCHMARK(BM_Crc32PerLine);

void
printTable1()
{
    BmoConfig config;
    BmoGraph graph = buildStandardGraph(config);
    std::printf("=== Table 1: BMOs and their extra write latency "
                "(simulated) ===\n");
    std::printf("%-22s %-30s %s\n", "BMO", "sub-operations",
                "latency on writes");
    std::printf("%-22s %-30s %.0f ns (E1-E4)\n", "Encryption",
                "ctr bump, OTP, XOR, MAC",
                ticks::toNsF(config.counterBumpLatency +
                             config.aesLatency + config.xorLatency +
                             config.macLatency));
    std::printf("%-22s %-30s %.0f ns (D1-D4, MD5)\n", "Deduplication",
                "hash, lookup, remap, meta-wb",
                ticks::toNsF(config.md5Latency +
                             config.dedupLookupLatency +
                             config.remapUpdateLatency +
                             config.metaEncryptLatency));
    std::printf("%-22s %-30s %.0f ns (I1-I%u, 9-level tree)\n",
                "Integrity (BMT)", "leaf..root SHA-1 chain",
                ticks::toNsF(config.merkleLevels *
                             config.merkleHashLatency),
                config.merkleLevels);
    std::printf("%-22s %-30s %.0f ns\n", "Total (serialized)",
                "all sub-operations back-to-back",
                ticks::toNsF(graph.serializedLatency()));
    std::printf("%-22s %-30s %.0f ns\n", "Critical path",
                "after decomposition (Fig. 6)",
                ticks::toNsF(graph.criticalPath()));
    std::printf("\nDependency graph (Figure 6):\n%s\n",
                graph.toString().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const auto wall_start = std::chrono::steady_clock::now();
    printTable1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    {
        BmoConfig config;
        BmoGraph graph = buildStandardGraph(config);
        janus::bench::writeSimpleJson(
            "table1_bmo_latency",
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall_start)
                .count(),
            {{"serialized_total_ns",
              ticks::toNsF(graph.serializedLatency())},
             {"critical_path_ns",
              ticks::toNsF(graph.criticalPath())}});
    }
    return 0;
}
