/**
 * @file
 * Ablation: how the write-path overhead and the Janus recovery
 * change with the set of integrated BMOs — from a bare system
 * through the paper's default three (encryption + integrity +
 * deduplication) to the extended five (plus BDI compression and
 * Start-Gap wear leveling). The BMO graph makes each mix pure
 * registration; this bench demonstrates exactly that extensibility
 * claim and quantifies each BMO's cost.
 */

#include "bench_common.hh"

namespace
{

using namespace janus;
using namespace janus::bench;

struct Mix
{
    const char *name;
    bool enc, dedup, bmt, bdi, wear;
};

ExperimentConfig
mixConfig(const Mix &mix, WritePathMode mode, Instrumentation instr)
{
    ExperimentConfig config;
    config.workloadName = "tatp";
    config.workload.txnsPerCore = 200;
    config.sys.mode = mode;
    config.instr = instr;
    config.sys.bmo.encryption = mix.enc;
    config.sys.bmo.deduplication = mix.dedup;
    config.sys.bmo.integrity = mix.bmt;
    config.sys.bmo.compression = mix.bdi;
    config.sys.bmo.wearLeveling = mix.wear;
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    janus::bench::parseBenchFlags(argc, argv);
    setQuiet(true);
    const Mix mixes[] = {
        {"none", false, false, false, false, false},
        {"enc", true, false, false, false, false},
        {"enc+bmt", true, false, true, false, false},
        {"enc+bmt+dedup (paper)", true, true, true, false, false},
        {"+compression", true, true, true, true, false},
        {"+wear-leveling", true, true, true, true, true},
    };

    BenchRunner bench("ablation_bmo_mix");
    struct Cell
    {
        std::size_t serial, janus;
    };
    std::vector<Cell> cells;
    for (const Mix &mix : mixes) {
        Cell cell;
        cell.serial = bench.add(
            "serial/" + std::string(mix.name),
            mixConfig(mix, WritePathMode::Serialized,
                      Instrumentation::None));
        cell.janus = bench.add(
            "janus/" + std::string(mix.name),
            mixConfig(mix, WritePathMode::Janus,
                      Instrumentation::Manual));
        cells.push_back(cell);
    }
    bench.runAll();

    std::printf("=== Ablation: BMO mix vs write latency and Janus "
                "recovery (TATP) ===\n");
    std::printf("%-24s %12s %12s %10s\n", "BMO mix",
                "serial w(ns)", "janus w(ns)", "speedup");
    std::size_t mi = 0;
    for (const Mix &mix : mixes) {
        const ExperimentResult &serial =
            bench.result(cells[mi].serial);
        const ExperimentResult &janus_r =
            bench.result(cells[mi].janus);
        std::printf("%-24s %12.0f %12.0f %9.2fx\n", mix.name,
                    serial.avgWriteLatencyNs,
                    janus_r.avgWriteLatencyNs,
                    ratio(serial, janus_r));
        ++mi;
    }

    std::printf("\nEach row adds one BMO by flipping a config flag — "
                "the sub-operation graph, the scheduling and the\n"
                "pre-execution categorization all re-derive "
                "automatically (Section 3.1's generic rules).\n");
    bench.writeJson();
    return 0;
}
