/**
 * @file
 * Figure 14 reproduction: Janus speedup over the serialized baseline
 * with 1x / 2x / 4x / unlimited BMO units and Janus buffers, at a
 * fixed large (8 KB) per-transaction update, for the five scalable
 * workloads.
 *
 * Paper shape: speedup grows with the resources and saturates once
 * they stop being the bottleneck; B-Tree keeps benefiting all the
 * way to unlimited.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    janus::bench::parseBenchFlags(argc, argv);
    using namespace janus;
    using namespace janus::bench;
    setQuiet(true);

    const char *workloads[] = {"array_swap", "queue", "hash_table",
                               "rb_tree", "b_tree"};
    const char *point_names[] = {"1x", "2x", "4x", "unlimited"};

    BenchRunner bench("fig14_units");
    struct Cell
    {
        std::size_t serial;
        std::size_t janus[4];
    };
    std::vector<Cell> cells;
    for (const char *w : workloads) {
        // The baseline keeps the default resources; only Janus's
        // units and buffers scale (the paper's experiment).
        RunSpec base;
        base.workload = w;
        base.valueBytes = 8192;
        base.txnsPerCore = 40;
        Cell cell;
        cell.serial = bench.add("serial/" + std::string(w), base);
        for (unsigned point = 0; point < 4; ++point) {
            RunSpec spec = base;
            spec.mode = WritePathMode::Janus;
            spec.instr = Instrumentation::Manual;
            if (point < 3)
                spec.resourceScale = 1u << point;
            else
                spec.unlimitedResources = true;
            cell.janus[point] =
                bench.add("janus/" + std::string(w) + "@" +
                              point_names[point],
                          spec);
        }
        cells.push_back(cell);
    }
    bench.runAll();

    printHeader("Figure 14: speedup vs BMO units / buffer scale "
                "(8 KB txns)",
                {"1x", "2x", "4x", "unlimited"});
    std::vector<std::vector<double>> per_col(4);
    std::size_t wi = 0;
    for (const char *w : workloads) {
        std::vector<double> row;
        for (unsigned point = 0; point < 4; ++point) {
            row.push_back(
                ratio(bench.result(cells[wi].serial),
                      bench.result(cells[wi].janus[point])));
            per_col[point].push_back(row.back());
        }
        printRow(w, row);
        ++wi;
    }
    printRow("geomean", {geomean(per_col[0]), geomean(per_col[1]),
                         geomean(per_col[2]), geomean(per_col[3])});

    std::printf("\npaper: speedup increases with units/buffers and "
                "saturates; B-Tree alone keeps gaining with\n"
                "       unlimited resources.\n");
    bench.writeJson();
    return 0;
}
