/**
 * @file
 * Crash-audit driver (src/fault/): sweeps persist-boundary crash
 * points per workload, replays recovery at each one, runs the
 * bit-flip injection campaign against the integrity machinery, and
 * writes a machine-readable AUDIT_crash.json. Exits nonzero if any
 * crash point fails to recover, any injected fault goes undetected
 * (or misattributed), or the backend audit finds drift.
 *
 * Default run (no flags) reproduces the acceptance matrix:
 *   1. exhaustive sweep of array_swap and queue;
 *   2. sampled sweep (200 points) of all seven workloads.
 * With --workloads= given, only those are audited (at --sample=).
 *
 * Flags:
 *   --workloads=a,b   comma-separated Table 4 names
 *   --mode=janus|serialized|both          (default janus)
 *   --txns=N          transactions per core (default 30)
 *   --sample=N        crash points per workload, 0 = exhaustive
 *                     (default 200 when --workloads= is given)
 *   --seed=N          workload seed        (default JANUS_SEED or 1)
 *   --inject=N        bit-flip trials per category (default 32)
 *   --faults=on|off   enable the online resilience layer with an
 *                     aggressive seeded fault campaign during the
 *                     audited run, so recovery is validated with
 *                     retries and bad-line remaps live (default off)
 *   --group-commit=K  controller-side group commit batch size for
 *                     the audited run; WAL workloads also fence
 *                     every K records (default 0 = off)
 *   --out=FILE        report path          (default AUDIT_crash.json)
 *   --replay=T:S      re-simulate one crash at tick T with seed S
 *                     twice and check the durable images are
 *                     bit-identical (requires one --workloads= name)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "fault/crash_audit.hh"
#include "harness/runner.hh"
#include "workloads/workload.hh"

namespace
{

using namespace janus;

struct DriverFlags
{
    std::vector<std::string> workloads;
    std::vector<WritePathMode> modes = {WritePathMode::Janus};
    unsigned txns = 30;
    std::size_t sample = 200;
    std::uint64_t seed = 1;
    unsigned inject = 32;
    bool faults = false;
    unsigned groupCommitK = 0;
    std::string out = "AUDIT_crash.json";
    bool replay = false;
    Tick replayTick = 0;
    std::uint64_t replaySeed = 1;
};

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= csv.size()) {
        std::size_t comma = csv.find(',', start);
        if (comma == std::string::npos)
            comma = csv.size();
        if (comma > start)
            out.push_back(csv.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

std::uint64_t
parseU64(const char *arg, const char *text)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0')
        panic("malformed %s", arg);
    return static_cast<std::uint64_t>(v);
}

DriverFlags
parseFlags(int argc, char **argv)
{
    DriverFlags flags;
    flags.seed = seedOverride().value_or(1);
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto has = [&](const char *prefix) -> const char * {
            std::size_t n = std::strlen(prefix);
            return std::strncmp(arg, prefix, n) == 0 ? arg + n
                                                     : nullptr;
        };
        if (const char *v = has("--workloads=")) {
            flags.workloads = splitList(v);
        } else if (const char *v = has("--mode=")) {
            if (std::strcmp(v, "janus") == 0)
                flags.modes = {WritePathMode::Janus};
            else if (std::strcmp(v, "serialized") == 0)
                flags.modes = {WritePathMode::Serialized};
            else if (std::strcmp(v, "both") == 0)
                flags.modes = {WritePathMode::Serialized,
                               WritePathMode::Janus};
            else
                panic("unknown --mode=%s", v);
        } else if (const char *v = has("--txns=")) {
            flags.txns = static_cast<unsigned>(parseU64(arg, v));
        } else if (const char *v = has("--sample=")) {
            flags.sample =
                static_cast<std::size_t>(parseU64(arg, v));
        } else if (const char *v = has("--seed=")) {
            flags.seed = parseU64(arg, v);
        } else if (const char *v = has("--inject=")) {
            flags.inject = static_cast<unsigned>(parseU64(arg, v));
        } else if (const char *v = has("--faults=")) {
            if (std::strcmp(v, "on") == 0)
                flags.faults = true;
            else if (std::strcmp(v, "off") == 0)
                flags.faults = false;
            else
                panic("unknown --faults=%s (want on|off)", v);
        } else if (const char *v = has("--group-commit=")) {
            flags.groupCommitK =
                static_cast<unsigned>(parseU64(arg, v));
        } else if (const char *v = has("--out=")) {
            flags.out = v;
        } else if (const char *v = has("--replay=")) {
            const char *colon = std::strchr(v, ':');
            if (colon == nullptr)
                panic("--replay wants <tick>:<seed>");
            flags.replay = true;
            flags.replayTick =
                parseU64(arg, std::string(v, colon).c_str());
            flags.replaySeed = parseU64(arg, colon + 1);
        } else {
            panic("unknown argument '%s' (see bench/audit_crash.cc)",
                  arg);
        }
    }
    return flags;
}

AuditConfig
makeConfig(const DriverFlags &flags, const std::string &workload,
           WritePathMode mode, std::size_t sample)
{
    AuditConfig config;
    config.workload = workload;
    config.mode = mode;
    config.manual = mode == WritePathMode::Janus;
    config.txnsPerCore = flags.txns;
    config.seed = flags.seed;
    config.samplePoints = sample;
    config.sampleSeed = flags.seed;
    config.injectionTrials = flags.inject;
    config.groupCommitK = flags.groupCommitK;
    config.walGroup = std::max(1u, flags.groupCommitK);
    if (flags.faults) {
        // Aggressive seeded campaign: high enough rates that retries
        // and bad-line remaps actually fire during the audited run,
        // proving crash recovery is remap-agnostic (the journal
        // records logical line addresses).
        config.resilience.enabled = true;
        config.resilience.seed = flags.seed;
        config.resilience.faults.transientFlipRate = 0.05;
        config.resilience.faults.stuckCellRate = 0.02;
        config.resilience.faults.wearFactor = 0.05;
        config.resilience.retryBudget = 2;
    }
    return config;
}

int
runReplay(const DriverFlags &flags)
{
    if (flags.workloads.size() != 1)
        panic("--replay needs exactly one --workloads= name");
    AuditConfig config = makeConfig(flags, flags.workloads[0],
                                    flags.modes.back(), 0);
    config.seed = flags.replaySeed;
    ReplayResult first = replayCrashPoint(config, flags.replayTick);
    ReplayResult second = replayCrashPoint(config, flags.replayTick);
    const bool identical =
        first.imageHash == second.imageHash &&
        first.recoveredHash == second.recoveredHash;
    std::printf("replay %s tick=%llu seed=%llu: prefix=%zu "
                "image=0x%016llx recovered=0x%016llx rollbacks=%u "
                "%s%s\n",
                flags.workloads[0].c_str(),
                static_cast<unsigned long long>(flags.replayTick),
                static_cast<unsigned long long>(flags.replaySeed),
                first.journalPrefix,
                static_cast<unsigned long long>(first.imageHash),
                static_cast<unsigned long long>(
                    first.recoveredHash),
                first.rollbacks,
                first.recovered ? "recovered"
                                : first.error.c_str(),
                identical ? " [bit-identical]"
                          : " [REPLAY DIVERGED]");
    return first.recovered && identical ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto wall_start = std::chrono::steady_clock::now();
    DriverFlags flags = parseFlags(argc, argv);
    if (flags.replay)
        return runReplay(flags);

    // (workload, mode, sample) audit matrix.
    struct Job
    {
        std::string workload;
        WritePathMode mode;
        std::size_t sample;
    };
    std::vector<Job> jobs;
    if (!flags.workloads.empty()) {
        for (const std::string &w : flags.workloads)
            for (WritePathMode mode : flags.modes)
                jobs.push_back(Job{w, mode, flags.sample});
    } else {
        // Acceptance matrix: exhaustive on the two small-footprint
        // workloads, sampled everywhere — including the WAL
        // appender family, whose recovery truncates torn log tails
        // instead of rolling an undo log back.
        for (WritePathMode mode : flags.modes) {
            jobs.push_back(Job{"array_swap", mode, 0});
            jobs.push_back(Job{"queue", mode, 0});
            for (const std::string &w : allWorkloadNames())
                jobs.push_back(Job{w, mode, flags.sample});
            for (const std::string &w : walWorkloadNames())
                jobs.push_back(Job{w, mode, flags.sample});
        }
    }

    bool all_passed = true;
    std::string reports;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const Job &job = jobs[i];
        AuditReport report = runCrashAudit(
            makeConfig(flags, job.workload, job.mode, job.sample));
        std::printf("audit %-12s %-10s %s: %zu/%zu points, "
                    "%llu rollbacks, %zu failures%s%s\n",
                    job.workload.c_str(),
                    job.mode == WritePathMode::Janus ? "janus"
                                                     : "serialized",
                    job.sample == 0 ? "full   " : "sampled",
                    report.sweptPoints, report.totalPoints,
                    static_cast<unsigned long long>(
                        report.rollbacks),
                    report.failures.size(),
                    report.backendVerified
                        ? ""
                        : ", BACKEND AUDIT FAILED",
                    report.hasFailure()
                        ? (" (repro: " + report.repro() + ")")
                              .c_str()
                        : "");
        all_passed = all_passed && report.passed();
        if (i)
            reports += ",\n";
        reports += report.toJson();
    }

    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    std::ofstream out(flags.out);
    if (!out) {
        warn("cannot write %s", flags.out.c_str());
    } else {
        out << "{\n  \"driver\": \"audit_crash\",\n";
        out << "  \"wall_seconds\": " << wall << ",\n";
        out << "  \"passed\": " << (all_passed ? "true" : "false")
            << ",\n  \"audits\": [\n"
            << reports << "  ]\n}\n";
    }
    std::printf("[audit_crash: %zu audits, %.2fs wall -> %s] %s\n",
                jobs.size(), wall, flags.out.c_str(),
                all_passed ? "PASS" : "FAIL");
    return all_passed ? 0 : 1;
}
