/**
 * @file
 * Figure 11 reproduction: Janus speedup with manual instrumentation
 * versus the automated compiler pass (Section 4.5), over the
 * serialized baseline. Also prints the pass's per-workload
 * instrumentation report.
 *
 * Paper shape: auto within ~13% of manual on average, except Queue
 * and RB-Tree where loops and pointer chasing defeat the static
 * pass.
 */

#include "bench_common.hh"

int
main()
{
    using namespace janus;
    using namespace janus::bench;
    setQuiet(true);

    printHeader("Figure 11: manual vs automated instrumentation",
                {"manual", "auto", "auto/man%"});

    std::vector<double> man_col, auto_col;
    std::vector<std::string> reports;
    for (const std::string &w : allWorkloadNames()) {
        RunSpec spec;
        spec.workload = w;
        spec.txnsPerCore = 250;
        ExperimentResult serial = run(spec);
        spec.mode = WritePathMode::Janus;
        spec.instr = Instrumentation::Manual;
        ExperimentResult manual = run(spec);
        spec.instr = Instrumentation::Auto;
        ExperimentResult automatic = run(spec);
        double sm = ratio(serial, manual);
        double sa = ratio(serial, automatic);
        man_col.push_back(sm);
        auto_col.push_back(sa);
        printRow(w, {sm, sa, 100 * sa / sm});
        reports.push_back(w + ": " +
                          automatic.instrReport.toString());
    }
    printRow("geomean", {geomean(man_col), geomean(auto_col),
                         100 * geomean(auto_col) /
                             geomean(man_col)});

    std::printf("\ncompiler pass report per workload:\n");
    for (const auto &r : reports)
        std::printf("  %s\n", r.c_str());
    std::printf("\npaper: auto achieves 2.00x vs manual 2.35x "
                "(~13%% lower); Queue and RB-Tree see little "
                "benefit from auto\n       (loops / pointer "
                "chasing).\n");
    return 0;
}
