/**
 * @file
 * Figure 11 reproduction: Janus speedup with manual instrumentation
 * versus the automated compiler pass (Section 4.5), over the
 * serialized baseline. Also prints the pass's per-workload
 * instrumentation report.
 *
 * Paper shape: auto within ~13% of manual on average, except Queue
 * and RB-Tree where loops and pointer chasing defeat the static
 * pass.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    janus::bench::parseBenchFlags(argc, argv);
    using namespace janus;
    using namespace janus::bench;
    setQuiet(true);

    BenchRunner bench("fig11_auto");
    struct Cell
    {
        std::size_t serial, man, aut;
    };
    std::vector<Cell> cells;
    for (const std::string &w : allWorkloadNames()) {
        RunSpec spec;
        spec.workload = w;
        spec.txnsPerCore = 250;
        Cell cell;
        cell.serial = bench.add("serial/" + w, spec);
        spec.mode = WritePathMode::Janus;
        spec.instr = Instrumentation::Manual;
        cell.man = bench.add("manual/" + w, spec);
        spec.instr = Instrumentation::Auto;
        cell.aut = bench.add("auto/" + w, spec);
        cells.push_back(cell);
    }
    bench.runAll();

    printHeader("Figure 11: manual vs automated instrumentation",
                {"manual", "auto", "auto/man%"});
    std::vector<double> man_col, auto_col;
    std::vector<std::string> reports;
    std::size_t wi = 0;
    for (const std::string &w : allWorkloadNames()) {
        const ExperimentResult &serial =
            bench.result(cells[wi].serial);
        const ExperimentResult &manual = bench.result(cells[wi].man);
        const ExperimentResult &automatic =
            bench.result(cells[wi].aut);
        double sm = ratio(serial, manual);
        double sa = ratio(serial, automatic);
        man_col.push_back(sm);
        auto_col.push_back(sa);
        printRow(w, {sm, sa, 100 * sa / sm});
        reports.push_back(w + ": " +
                          automatic.instrReport.toString());
        ++wi;
    }
    printRow("geomean", {geomean(man_col), geomean(auto_col),
                         100 * geomean(auto_col) /
                             geomean(man_col)});

    std::printf("\ncompiler pass report per workload:\n");
    for (const auto &r : reports)
        std::printf("  %s\n", r.c_str());
    std::printf("\npaper: auto achieves 2.00x vs manual 2.35x "
                "(~13%% lower); Queue and RB-Tree see little "
                "benefit from auto\n       (loops / pointer "
                "chasing).\n");
    bench.writeJson();
    return 0;
}
