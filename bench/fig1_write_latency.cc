/**
 * @file
 * Figure 1 reproduction: critical write latency without and with
 * BMOs. The paper's claim — BMOs raise the critical latency of a
 * persistent write by more than 10x over the bare ~15 ns cache
 * writeback — is regenerated from isolated writes through the
 * memory controller.
 */

#include <chrono>
#include <cstdio>

#include "bench_common.hh"
#include "cpu/timing_core.hh"
#include "memctrl/memory_controller.hh"

int
main()
{
    using namespace janus;

    const auto wall_start = std::chrono::steady_clock::now();
    CoreConfig core; // for the writeback latency constant
    auto probe = [&](WritePathMode mode) {
        MemCtrlConfig config;
        config.mode = mode;
        MemoryController mc(config);
        // Warm the counter cache with one throwaway write.
        mc.persistWrite(0x9000, CacheLine::fromSeed(0), ticks::us,
                        false);
        Tick arrival = 10 * ticks::us;
        PersistResult r = mc.persistWrite(
            0x9000, CacheLine::fromSeed(1), arrival, false);
        return r.persisted - arrival;
    };

    Tick wb = core.writebackLatency;
    Tick none = probe(WritePathMode::NoBmo);
    Tick serial = probe(WritePathMode::Serialized);
    Tick parallel = probe(WritePathMode::Parallel);

    std::printf("=== Figure 1: critical write latency ===\n");
    std::printf("%-34s %8.0f ns\n", "(a) cache writeback only",
                ticks::toNsF(wb + none));
    std::printf("%-34s %8.0f ns  (%.1fx)\n",
                "(b) writeback + serialized BMOs",
                ticks::toNsF(wb + serial),
                static_cast<double>(wb + serial) /
                    static_cast<double>(wb + none));
    std::printf("%-34s %8.0f ns  (%.1fx)\n",
                "    writeback + parallelized BMOs",
                ticks::toNsF(wb + parallel),
                static_cast<double>(wb + parallel) /
                    static_cast<double>(wb + none));
    std::printf("\npaper: BMOs increase the critical latency by "
                "more than 10x -> measured %.1fx\n",
                static_cast<double>(wb + serial) /
                    static_cast<double>(wb + none));
    janus::bench::writeSimpleJson(
        "fig1_write_latency",
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count(),
        {{"writeback_only_ns", ticks::toNsF(wb + none)},
         {"serialized_bmo_ns", ticks::toNsF(wb + serial)},
         {"parallel_bmo_ns", ticks::toNsF(wb + parallel)},
         {"serialized_over_writeback",
          static_cast<double>(wb + serial) /
              static_cast<double>(wb + none)}});
    return 0;
}
