/**
 * @file
 * Figure 1 reproduction: critical write latency without and with
 * BMOs. The paper's claim — BMOs raise the critical latency of a
 * persistent write by more than 10x over the bare ~15 ns cache
 * writeback — is regenerated from isolated writes through the
 * memory controller.
 *
 * With JANUS_TRACE set, the parallel-BMO probe records a
 * persist-path trace (TRACE_fig1_write_latency.json, loadable in
 * Perfetto / chrome://tracing) and the JSON metrics include the
 * per-stage latency breakdown, whose stages sum exactly to the
 * end-to-end persist latency.
 */

#include <chrono>
#include <cstdio>
#include <fstream>

#include "bench_common.hh"
#include "cpu/timing_core.hh"
#include "memctrl/memory_controller.hh"
#include "sim/trace.hh"

int
main(int argc, char **argv)
{
    janus::bench::parseBenchFlags(argc, argv);
    using namespace janus;

    const auto wall_start = std::chrono::steady_clock::now();
    const bool traced = traceEnvEnabled();
    CoreConfig core; // for the writeback latency constant
    std::vector<std::pair<std::string, double>> metrics;

    auto probe = [&](WritePathMode mode, const char *prefix) {
        MemCtrlConfig config;
        config.mode = mode;
        MemoryController mc(config);
        Tracer tracer(1 << 12);
        if (traced)
            mc.setTracer(&tracer);
        // Warm the counter cache with one throwaway write.
        mc.persistWrite(0x9000, CacheLine::fromSeed(0), ticks::us,
                        false);
        Tick arrival = 10 * ticks::us;
        PersistResult r = mc.persistWrite(
            0x9000, CacheLine::fromSeed(1), arrival, false);
        Tick latency = r.persisted - arrival;

        if (prefix != nullptr) {
            // Stage means over both writes; their sum reconciles
            // tick-exactly with the measured end-to-end latency.
            const PersistBreakdown &bd = mc.breakdown();
            std::string p(prefix);
            metrics.emplace_back(p + "_stage_bmo_ns",
                                 bd.bmoNs.mean());
            metrics.emplace_back(p + "_stage_queue_ns",
                                 bd.queueNs.mean());
            metrics.emplace_back(p + "_stage_order_ns",
                                 bd.orderNs.mean());
            metrics.emplace_back(p + "_stage_sum_ns",
                                 bd.bmoNs.mean() + bd.queueNs.mean() +
                                     bd.orderNs.mean());
            metrics.emplace_back(p + "_persist_total_ns",
                                 bd.totalNs.mean());
        }
        if (traced && mode == WritePathMode::Parallel) {
            std::ofstream out("TRACE_fig1_write_latency.json");
            tracer.writeChromeJson(out);
            std::printf("[trace: %llu events -> "
                        "TRACE_fig1_write_latency.json]\n",
                        static_cast<unsigned long long>(
                            tracer.recorded()));
        }
        return latency;
    };

    Tick wb = core.writebackLatency;
    Tick none = probe(WritePathMode::NoBmo, nullptr);
    Tick serial = probe(WritePathMode::Serialized, "serialized");
    Tick parallel = probe(WritePathMode::Parallel, "parallel");

    std::printf("=== Figure 1: critical write latency ===\n");
    std::printf("%-34s %8.0f ns\n", "(a) cache writeback only",
                ticks::toNsF(wb + none));
    std::printf("%-34s %8.0f ns  (%.1fx)\n",
                "(b) writeback + serialized BMOs",
                ticks::toNsF(wb + serial),
                static_cast<double>(wb + serial) /
                    static_cast<double>(wb + none));
    std::printf("%-34s %8.0f ns  (%.1fx)\n",
                "    writeback + parallelized BMOs",
                ticks::toNsF(wb + parallel),
                static_cast<double>(wb + parallel) /
                    static_cast<double>(wb + none));
    std::printf("\npaper: BMOs increase the critical latency by "
                "more than 10x -> measured %.1fx\n",
                static_cast<double>(wb + serial) /
                    static_cast<double>(wb + none));
    metrics.insert(
        metrics.begin(),
        {{"writeback_only_ns", ticks::toNsF(wb + none)},
         {"serialized_bmo_ns", ticks::toNsF(wb + serial)},
         {"parallel_bmo_ns", ticks::toNsF(wb + parallel)},
         {"serialized_over_writeback",
          static_cast<double>(wb + serial) /
              static_cast<double>(wb + none)}});
    janus::bench::writeSimpleJson(
        "fig1_write_latency",
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count(),
        metrics);
    return 0;
}
