/**
 * @file
 * Figure 13 reproduction: Janus speedup (parallelization only, and
 * with pre-execution) as the per-transaction update size sweeps
 * 64 B .. 8 KB, for the five size-scalable workloads.
 *
 * Paper shape: the pre-execution benefit first grows with the
 * transaction size, then declines once the BMO units and Janus
 * buffers saturate; parallelization keeps growing slowly.
 */

#include "bench_common.hh"

int
main()
{
    using namespace janus;
    using namespace janus::bench;
    setQuiet(true);

    const char *workloads[] = {"array_swap", "queue", "hash_table",
                               "rb_tree", "b_tree"};
    const std::uint64_t sizes[] = {64, 256, 1024, 4096, 8192};
    std::vector<std::string> cols;
    for (std::uint64_t s : sizes)
        cols.push_back(std::to_string(s) + "B:pre");
    for (std::uint64_t s : sizes)
        cols.push_back(std::to_string(s) + "B:par");
    printHeader("Figure 13: speedup vs per-transaction update size",
                cols);

    for (const char *w : workloads) {
        std::vector<double> pre_row, par_row;
        for (std::uint64_t size : sizes) {
            RunSpec spec;
            spec.workload = w;
            spec.valueBytes = size;
            // Bound the simulated volume at large sizes.
            spec.txnsPerCore =
                static_cast<unsigned>(120 / (1 + size / 2048)) + 20;
            ExperimentResult serial = run(spec);
            spec.mode = WritePathMode::Parallel;
            ExperimentResult par = run(spec);
            spec.mode = WritePathMode::Janus;
            spec.instr = Instrumentation::Manual;
            ExperimentResult pre = run(spec);
            pre_row.push_back(ratio(serial, pre));
            par_row.push_back(ratio(serial, par));
        }
        std::vector<double> row = pre_row;
        row.insert(row.end(), par_row.begin(), par_row.end());
        printRow(w, row);
    }

    std::printf("\npaper: pre-execution speedup rises with size then "
                "falls once BMO units/buffers saturate;\n"
                "       parallelization rises slowly and "
                "monotonically.\n");
    return 0;
}
