/**
 * @file
 * Figure 13 reproduction: Janus speedup (parallelization only, and
 * with pre-execution) as the per-transaction update size sweeps
 * 64 B .. 8 KB, for the five size-scalable workloads.
 *
 * Paper shape: the pre-execution benefit first grows with the
 * transaction size, then declines once the BMO units and Janus
 * buffers saturate; parallelization keeps growing slowly.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    janus::bench::parseBenchFlags(argc, argv);
    using namespace janus;
    using namespace janus::bench;
    setQuiet(true);

    const char *workloads[] = {"array_swap", "queue", "hash_table",
                               "rb_tree", "b_tree"};
    const std::uint64_t sizes[] = {64, 256, 1024, 4096, 8192};
    std::vector<std::string> cols;
    for (std::uint64_t s : sizes)
        cols.push_back(std::to_string(s) + "B:pre");
    for (std::uint64_t s : sizes)
        cols.push_back(std::to_string(s) + "B:par");

    BenchRunner bench("fig13_txsize");
    struct Cell
    {
        std::size_t serial, par, pre;
    };
    std::vector<std::vector<Cell>> cells;
    for (const char *w : workloads) {
        cells.emplace_back();
        for (std::uint64_t size : sizes) {
            RunSpec spec;
            spec.workload = w;
            spec.valueBytes = size;
            // Bound the simulated volume at large sizes.
            spec.txnsPerCore =
                static_cast<unsigned>(120 / (1 + size / 2048)) + 20;
            std::string at =
                std::string(w) + "@" + std::to_string(size) + "B";
            Cell cell;
            cell.serial = bench.add("serial/" + at, spec);
            spec.mode = WritePathMode::Parallel;
            cell.par = bench.add("par/" + at, spec);
            spec.mode = WritePathMode::Janus;
            spec.instr = Instrumentation::Manual;
            cell.pre = bench.add("pre/" + at, spec);
            cells.back().push_back(cell);
        }
    }
    bench.runAll();

    printHeader("Figure 13: speedup vs per-transaction update size",
                cols);
    std::size_t wi = 0;
    for (const char *w : workloads) {
        std::vector<double> pre_row, par_row;
        for (const Cell &cell : cells[wi]) {
            pre_row.push_back(ratio(bench.result(cell.serial),
                                    bench.result(cell.pre)));
            par_row.push_back(ratio(bench.result(cell.serial),
                                    bench.result(cell.par)));
        }
        std::vector<double> row = pre_row;
        row.insert(row.end(), par_row.begin(), par_row.end());
        printRow(w, row);
        ++wi;
    }

    std::printf("\npaper: pre-execution speedup rises with size then "
                "falls once BMO units/buffers saturate;\n"
                "       parallelization rises slowly and "
                "monotonically.\n");
    bench.writeJson();
    return 0;
}
