/**
 * @file
 * Figure 12 reproduction: Janus speedup under deduplication ratios
 * 0.25 / 0.5 / 0.75 with the MD5 (default) and CRC-32 (DeWrite)
 * fingerprints.
 *
 * Paper shape: with MD5 the speedup is nearly flat across ratios
 * (the 321 ns hash dominates the write overhead either way); with
 * the cheap CRC-32 a higher ratio helps somewhat.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    janus::bench::parseBenchFlags(argc, argv);
    using namespace janus;
    using namespace janus::bench;
    setQuiet(true);

    const double ratios[] = {0.25, 0.5, 0.75};
    std::vector<std::string> cols;
    for (const char *alg : {"md5", "crc"})
        for (double r : ratios)
            cols.push_back(std::string(alg) + "@" +
                           (r == 0.25 ? ".25" : r == 0.5 ? ".50"
                                                         : ".75"));

    BenchRunner bench("fig12_dedup");
    struct Cell
    {
        std::size_t serial, janus;
    };
    std::vector<std::vector<Cell>> cells;
    for (const std::string &w : allWorkloadNames()) {
        cells.emplace_back();
        for (DedupHash hash : {DedupHash::Md5, DedupHash::Crc32}) {
            for (double r : ratios) {
                RunSpec spec;
                spec.workload = w;
                spec.txnsPerCore = 200;
                spec.dupRatio = r;
                spec.dedupHash = hash;
                std::string at =
                    w + "/" +
                    (hash == DedupHash::Md5 ? "md5" : "crc") + "@" +
                    std::to_string(r);
                Cell cell;
                cell.serial = bench.add("serial/" + at, spec);
                spec.mode = WritePathMode::Janus;
                spec.instr = Instrumentation::Manual;
                cell.janus = bench.add("janus/" + at, spec);
                cells.back().push_back(cell);
            }
        }
    }
    bench.runAll();

    printHeader("Figure 12: speedup vs dedup ratio and fingerprint",
                cols);
    std::vector<std::vector<double>> per_col(cols.size());
    std::size_t wi = 0;
    for (const std::string &w : allWorkloadNames()) {
        std::vector<double> row;
        for (const Cell &cell : cells[wi])
            row.push_back(ratio(bench.result(cell.serial),
                                bench.result(cell.janus)));
        for (std::size_t i = 0; i < row.size(); ++i)
            per_col[i].push_back(row[i]);
        printRow(w, row);
        ++wi;
    }
    std::vector<double> means;
    for (auto &col : per_col)
        means.push_back(geomean(col));
    printRow("geomean", means);

    std::printf("\npaper: speedup nearly constant across ratios with "
                "MD5; mildly increasing with CRC-32.\n");
    bench.writeJson();
    return 0;
}
