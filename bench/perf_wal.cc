/**
 * @file
 * perf_wal: write-ahead-log appender sweep — the headline artifact
 * of the WAL engine + controller-side group commit. Sweeps the four
 * log-writer variants (see log/log_writer.hh) across group-commit
 * batch sizes K and record payload sizes, with the workload fencing
 * every K records (walGroup == K), and reports append throughput
 * plus per-cell p50/p99 durability latency as BENCH_wal.json.
 *
 *   perf_wal [--smoke] [--gate] [--seed=N] [--shards=N]
 *            [--shard-threads=N] [--shard-policy=P]
 *
 *   --smoke  tiny matrix (CI: two variants, K {1,8})
 *   --gate   exit 1 unless some variant's K=32 throughput is
 *            >= 2x its K=1 throughput (64 B records)
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace janus;
    using namespace janus::bench;

    bool smoke = false;
    bool gate = false;
    parseBenchFlags(
        argc, argv,
        {{"--smoke", [&smoke](const char *) { smoke = true; }},
         {"--gate", [&gate](const char *) { gate = true; }}});
    setQuiet(true);

    const std::vector<std::string> variants =
        smoke ? std::vector<std::string>{"wal_classic",
                                         "wal_header_dancing"}
              : walWorkloadNames();
    const std::vector<unsigned> batch =
        smoke ? std::vector<unsigned>{1, 8}
              : std::vector<unsigned>{1, 8, 32};
    const std::vector<std::uint64_t> sizes =
        smoke ? std::vector<std::uint64_t>{64}
              : std::vector<std::uint64_t>{64, 256};
    const unsigned cores = 4;
    const unsigned txns = smoke ? 60 : 600;

    BenchRunner bench("wal");
    // idx[variant][size][k]
    std::vector<std::vector<std::vector<std::size_t>>> idx(
        variants.size(),
        std::vector<std::vector<std::size_t>>(
            sizes.size(), std::vector<std::size_t>(batch.size())));
    for (std::size_t v = 0; v < variants.size(); ++v) {
        for (std::size_t s = 0; s < sizes.size(); ++s) {
            for (std::size_t k = 0; k < batch.size(); ++k) {
                RunSpec spec;
                spec.workload = variants[v];
                spec.mode = WritePathMode::Janus;
                // No manual PRE_*: a deep unfenced append burst
                // floods the pre-execution queues (4 cores x K
                // records x 2 PRE objects each), and the resulting
                // aged-out/dropped storm dominates the BMO stage —
                // see EXPERIMENTS.md. The fence-amortization study
                // wants the demand path.
                spec.instr = Instrumentation::None;
                spec.cores = cores;
                spec.txnsPerCore = txns;
                spec.valueBytes = sizes[s];
                spec.groupCommitK = batch[k];
                spec.walGroup = batch[k];
                idx[v][s][k] = bench.add(
                    variants[v] + "@k" + std::to_string(batch[k]) +
                        "b" + std::to_string(sizes[s]),
                    spec);
            }
        }
    }
    bench.runAll();

    // Append throughput (million records per simulated second) and
    // the amortization ratio of each K over fence-per-record.
    std::vector<std::string> cols;
    for (unsigned k : batch)
        cols.push_back("k" + std::to_string(k));
    auto recsPerSec = [&](const ExperimentResult &r) {
        const double ns = ticks::toNsF(r.makespan);
        return ns > 0 ? double(cores) * txns * 1e9 / ns : 0.0;
    };
    double best_speedup = 0.0;
    std::string best_cell;
    for (std::size_t s = 0; s < sizes.size(); ++s) {
        printHeader(("perf_wal: Mrecords/s, " +
                     std::to_string(sizes[s]) + " B records")
                        .c_str(),
                    cols);
        for (std::size_t v = 0; v < variants.size(); ++v) {
            std::vector<double> row;
            for (std::size_t k = 0; k < batch.size(); ++k)
                row.push_back(
                    recsPerSec(bench.result(idx[v][s][k])) / 1e6);
            printRow(variants[v], row, " %10.3f");
        }
        printHeader(("perf_wal: speedup vs k1, " +
                     std::to_string(sizes[s]) + " B records")
                        .c_str(),
                    cols);
        for (std::size_t v = 0; v < variants.size(); ++v) {
            const double base =
                recsPerSec(bench.result(idx[v][s][0]));
            std::vector<double> row;
            for (std::size_t k = 0; k < batch.size(); ++k) {
                const double speedup =
                    base > 0
                        ? recsPerSec(bench.result(idx[v][s][k])) /
                              base
                        : 0.0;
                row.push_back(speedup);
                if (sizes[s] == 64 && speedup > best_speedup) {
                    best_speedup = speedup;
                    best_cell = variants[v] + "@k" +
                                std::to_string(batch[k]);
                }
            }
            printRow(variants[v], row);
        }
    }

    bench.writeJson();

    if (gate) {
        if (best_speedup < 2.0) {
            std::printf("WAL-GATE FAIL: best amortization %.2fx "
                        "(%s); need >= 2x over fence-per-record\n",
                        best_speedup, best_cell.c_str());
            return 1;
        }
        std::printf("WAL-GATE PASS: %.2fx at %s\n", best_speedup,
                    best_cell.c_str());
    }
    return 0;
}
