/**
 * @file
 * perf_scale: sharded-scale-out throughput sweep — the headline
 * artifact of the partitioned parallel event core. Runs the fig9
 * many-core configuration (all seven workloads, 8 cores, Janus +
 * manual pre-execution) across shards x scheduler-threads cells and
 * reports simulator events/second plus speedup over the serial
 * single-channel machine, as BENCH_scale.json.
 *
 * Every cell also doubles as a determinism probe: for a fixed shard
 * count the simulation results (makespan, events, persists) must be
 * identical at 1 and 4 scheduler threads — thread count may only
 * change wall time, never the simulation. The binary hard-fails on
 * any divergence.
 *
 *   perf_scale [--smoke] [--gate] [--seed=N] [--shard-policy=P]
 *
 *   --smoke  tiny matrix (TSan CI: 2 workloads, shards {1,4})
 *   --gate   exit 1 unless events/sec at shards=4, threads=4 is
 *            >= 2x the serial machine (geomean across workloads;
 *            skipped with a warning when the host has < 4 hardware
 *            threads)
 */

#include "bench_common.hh"

#include <thread>

int
main(int argc, char **argv)
{
    using namespace janus;
    using namespace janus::bench;

    bool smoke = false;
    bool gate = false;
    // Default to the shard-local address map (--shard-policy= still
    // overrides it through the common flag).
    const ShardRouterPolicy policy = ShardRouterPolicy::RegionAffine;
    parseBenchFlags(
        argc, argv,
        {{"--smoke", [&smoke](const char *) { smoke = true; }},
         {"--gate", [&gate](const char *) { gate = true; }}});
    setQuiet(true);

    struct Cell
    {
        unsigned shards, threads;
    };
    // threads=1 and threads=4 at the same shard count must agree
    // bit-for-bit; only the wall time may differ.
    const std::vector<Cell> cells =
        smoke ? std::vector<Cell>{{1, 1}, {4, 1}, {4, 4}}
              : std::vector<Cell>{
                    {1, 1}, {2, 1}, {2, 4}, {4, 1}, {4, 4}};
    std::vector<std::string> workloads =
        smoke ? std::vector<std::string>{"array_swap", "hash_table"}
              : allWorkloadNames();
    const unsigned cores = 8;
    // The fig9 many-core shape, scaled up until the event loop
    // dominates setup, so events/sec measures the core, not module
    // building and validation.
    const unsigned txns = smoke ? 60 : 1500;

    // One serial outer batch: each experiment's own shard-scheduler
    // pool is the parallelism under measurement, so nothing else may
    // compete for the machine.
    BenchRunner bench("scale");
    std::vector<std::vector<std::size_t>> idx(
        cells.size(), std::vector<std::size_t>(workloads.size()));
    for (std::size_t c = 0; c < cells.size(); ++c) {
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            RunSpec spec;
            spec.workload = workloads[w];
            spec.mode = WritePathMode::Janus;
            spec.instr = Instrumentation::Manual;
            spec.cores = cores;
            spec.txnsPerCore = txns;
            spec.shards = cells[c].shards;
            spec.shardThreads = cells[c].threads;
            spec.shardPolicy = policy;
            idx[c][w] = bench.add(
                workloads[w] + "@s" +
                    std::to_string(cells[c].shards) + "t" +
                    std::to_string(cells[c].threads),
                spec);
        }
    }
    bench.runAll(1);

    // Determinism: same shard count, different thread count ->
    // identical simulation.
    for (std::size_t a = 0; a < cells.size(); ++a) {
        for (std::size_t b = a + 1; b < cells.size(); ++b) {
            if (cells[a].shards != cells[b].shards)
                continue;
            for (std::size_t w = 0; w < workloads.size(); ++w) {
                const ExperimentResult &ra = bench.result(idx[a][w]);
                const ExperimentResult &rb = bench.result(idx[b][w]);
                if (ra.makespan != rb.makespan ||
                    ra.eventsExecuted != rb.eventsExecuted ||
                    ra.persists != rb.persists)
                    panic("non-deterministic sharded run: %s at "
                          "shards=%u diverges between threads=%u "
                          "and threads=%u",
                          workloads[w].c_str(), cells[a].shards,
                          cells[a].threads, cells[b].threads);
            }
        }
    }
    std::printf("[determinism: every shard count identical across "
                "scheduler thread counts]\n");

    // events/sec per cell, and speedup of each cell over the serial
    // single-channel machine (cell 0).
    std::vector<std::string> cols;
    for (const Cell &c : cells)
        cols.push_back("s" + std::to_string(c.shards) + "t" +
                       std::to_string(c.threads));
    printHeader("perf_scale: simulator Mevents/s (8 cores, janus)",
                cols);
    std::vector<std::vector<double>> eps(
        cells.size(), std::vector<double>(workloads.size()));
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        std::vector<double> row;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            const ExperimentResult &r = bench.result(idx[c][w]);
            eps[c][w] = r.simSeconds > 0
                            ? static_cast<double>(r.eventsExecuted) /
                                  r.simSeconds
                            : 0.0;
            row.push_back(eps[c][w] / 1e6);
        }
        printRow(workloads[w], row);
    }
    printHeader("perf_scale: events/s speedup vs serial (s1t1)",
                cols);
    std::vector<double> cell_speedup(cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c) {
        std::vector<double> ratios;
        for (std::size_t w = 0; w < workloads.size(); ++w)
            if (eps[0][w] > 0 && eps[c][w] > 0)
                ratios.push_back(eps[c][w] / eps[0][w]);
        cell_speedup[c] = geomean(ratios);
    }
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        std::vector<double> row;
        for (std::size_t c = 0; c < cells.size(); ++c)
            row.push_back(eps[0][w] > 0 ? eps[c][w] / eps[0][w]
                                        : 0.0);
        printRow(workloads[w], row);
    }
    printRow("geomean", cell_speedup);

    bench.writeJson();

    if (gate) {
        const unsigned hw = std::thread::hardware_concurrency();
        if (hw < 4) {
            warn("scale gate skipped: host has only %u hardware "
                 "threads (need >= 4)",
                 hw);
            return 0;
        }
        // The cell list always ends with (max shards, 4 threads).
        const double speedup = cell_speedup.back();
        if (speedup < 2.0) {
            std::printf("SCALE-GATE FAIL: %.2fx events/s at "
                        "shards=%u threads=%u (need >= 2x over the "
                        "serial machine)\n",
                        speedup, cells.back().shards,
                        cells.back().threads);
            return 1;
        }
        std::printf("SCALE-GATE PASS: %.2fx events/s at shards=%u "
                    "threads=%u\n",
                    speedup, cells.back().shards,
                    cells.back().threads);
    }
    return 0;
}
