/**
 * @file
 * Figure 9 reproduction: speedup of Janus (parallelization only,
 * and parallelization + pre-execution) over the serialized baseline
 * for all seven workloads on 1/2/4/8 cores.
 *
 * Paper shape: pre-execution well above parallelization everywhere;
 * both shrink as cores (and memory contention) grow; lookup-bound
 * workloads (Hash Table, RB-Tree) gain less.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    janus::bench::parseBenchFlags(argc, argv);
    using namespace janus;
    using namespace janus::bench;
    setQuiet(true);

    const unsigned core_counts[] = {1, 2, 4, 8};
    std::vector<std::string> cols;
    for (unsigned c : core_counts) {
        cols.push_back("par@" + std::to_string(c));
        cols.push_back("pre@" + std::to_string(c));
    }

    // Queue the full workload x cores x mode matrix, then run it in
    // one parallel batch.
    BenchRunner bench("fig9_cores");
    struct Cell
    {
        std::size_t serial, par, pre;
    };
    std::vector<std::vector<Cell>> cells;
    for (const std::string &w : allWorkloadNames()) {
        cells.emplace_back();
        for (unsigned cores : core_counts) {
            RunSpec spec;
            spec.workload = w;
            spec.cores = cores;
            // Keep total simulated work roughly constant.
            spec.txnsPerCore = 240 / cores + 60;
            std::string at = w + "@" + std::to_string(cores);
            Cell cell;
            cell.serial = bench.add("serial/" + at, spec);
            spec.mode = WritePathMode::Parallel;
            cell.par = bench.add("par/" + at, spec);
            spec.mode = WritePathMode::Janus;
            spec.instr = Instrumentation::Manual;
            cell.pre = bench.add("pre/" + at, spec);
            cells.back().push_back(cell);
        }
    }
    bench.runAll();

    printHeader("Figure 9: speedup over Serialized vs core count",
                cols);
    std::vector<std::vector<double>> per_col(cols.size());
    std::size_t wi = 0;
    for (const std::string &w : allWorkloadNames()) {
        std::vector<double> row;
        for (const Cell &cell : cells[wi]) {
            row.push_back(ratio(bench.result(cell.serial),
                                bench.result(cell.par)));
            row.push_back(ratio(bench.result(cell.serial),
                                bench.result(cell.pre)));
        }
        for (std::size_t i = 0; i < row.size(); ++i)
            per_col[i].push_back(row[i]);
        printRow(w, row);
        ++wi;
    }
    std::vector<double> means;
    for (auto &col : per_col)
        means.push_back(geomean(col));
    printRow("geomean", means);

    std::printf("\npaper: pre-execution 2.35x..1.87x over serialized "
                "for 1..8 cores; parallelization alone far lower;\n"
                "       speedup declines with core count "
                "(bus/BMO-unit contention).\n");
    bench.writeJson();
    return 0;
}
