/**
 * @file
 * Shared plumbing for the figure/table reproduction benches: a
 * one-call experiment runner plus consistent table printing. Each
 * bench binary regenerates the rows/series of one paper figure or
 * table; EXPERIMENTS.md records paper-vs-measured.
 *
 * Benches submit their *entire* run matrix up front through
 * BenchRunner, which executes it on the parallel worker pool
 * (`JANUS_BENCH_THREADS` or hardware concurrency; results are
 * bit-identical to serial execution) and writes a machine-readable
 * `BENCH_<name>.json` next to the binary's working directory so the
 * perf trajectory of the suite is tracked PR over PR.
 */

#ifndef JANUS_BENCH_BENCH_COMMON_HH
#define JANUS_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "harness/experiment.hh"
#include "harness/runner.hh"
#include "sim/critpath.hh"
#include "sim/metrics.hh"

namespace janus::bench
{

/**
 * BENCH_*.json schema version. Bump when a field changes meaning or
 * layout; perf_diff refuses to compare mismatched versions. Version
 * 2 = version 1 + schema_version + per-experiment critical_path.
 * Version 3 = version 2 + per-experiment persist_p999_ns plus an
 * optional per-tenant open-loop accounting array ("tenants").
 */
constexpr int benchSchemaVersion = 3;

/** Knobs one figure point needs. */
struct RunSpec
{
    std::string workload = "array_swap";
    WritePathMode mode = WritePathMode::Serialized;
    Instrumentation instr = Instrumentation::None;
    unsigned cores = 1;
    unsigned txnsPerCore = 200;
    std::uint64_t valueBytes = 64;
    double dupRatio = 0.5;
    DedupHash dedupHash = DedupHash::Md5;
    unsigned resourceScale = 1;
    bool unlimitedResources = false;
    bool nonBlockingWriteback = false;
    std::uint64_t seed = 1;
    /** Wear leveling (Start-Gap) for this run. */
    bool wearLeveling = false;
    /** Online resilience layer (chaos campaigns). */
    ResilienceConfig resilience;
    /** Memory channels (shards); 1 = the classic serial machine. */
    unsigned shards = 1;
    /** Shard-scheduler worker threads (0 = auto). */
    unsigned shardThreads = 0;
    /** Address -> home-shard map. */
    ShardRouterPolicy shardPolicy = ShardRouterPolicy::LineInterleave;
    /** Controller-side group commit batch size (0/1 = off). */
    unsigned groupCommitK = 0;
    /** WAL workloads: fence every G appended records. */
    unsigned walGroup = 1;
    /** Adaptive group commit (queue-depth-triggered early close). */
    bool gcAdaptive = false;
    std::uint64_t gcAdaptiveQueueDepth = 16;
    /** Controller-side QoS / admission control (inert when
     *  qos.enabled is false). */
    QosConfig qos;
    /** Open-loop arrival-driven load (closed-loop when disabled). */
    OpenLoopConfig openLoop;
};

inline ExperimentConfig
toConfig(const RunSpec &spec)
{
    ExperimentConfig config;
    config.workloadName = spec.workload;
    config.sys.mode = spec.mode;
    config.sys.cores = spec.cores;
    config.sys.bmo.dedupHash = spec.dedupHash;
    config.sys.resourceScale = spec.resourceScale;
    config.sys.unlimitedResources = spec.unlimitedResources;
    config.sys.core.nonBlockingWriteback = spec.nonBlockingWriteback;
    if (spec.wearLeveling)
        config.sys.bmo.wearLeveling = true;
    config.sys.resilience = spec.resilience;
    config.sys.shards = spec.shards;
    config.sys.shardThreads = spec.shardThreads;
    config.sys.shardPolicy = spec.shardPolicy;
    config.sys.groupCommitK = spec.groupCommitK;
    config.sys.gcAdaptive = spec.gcAdaptive;
    config.sys.gcAdaptiveQueueDepth = spec.gcAdaptiveQueueDepth;
    config.sys.qos = spec.qos;
    config.openLoop = spec.openLoop;
    config.instr = spec.instr;
    config.workload.txnsPerCore = spec.txnsPerCore;
    config.workload.valueBytes = spec.valueBytes;
    config.workload.dupRatio = spec.dupRatio;
    config.workload.seed = spec.seed;
    config.workload.walGroup = spec.walGroup;
    return config;
}

inline ExperimentResult
run(const RunSpec &spec)
{
    return runExperiment(toConfig(spec));
}

inline const char *
modeName(WritePathMode mode)
{
    switch (mode) {
      case WritePathMode::NoBmo:
        return "nobmo";
      case WritePathMode::Serialized:
        return "serialized";
      case WritePathMode::Parallel:
        return "parallel";
      case WritePathMode::Janus:
        return "janus";
    }
    return "?";
}

inline const char *
instrName(Instrumentation instr)
{
    switch (instr) {
      case Instrumentation::None:
        return "none";
      case Instrumentation::Manual:
        return "manual";
      case Instrumentation::Auto:
        return "auto";
    }
    return "?";
}

/** Parse a small positive count flag value (panics when malformed). */
inline unsigned
parseCountFlag(const char *text, const char *flag)
{
    char *end = nullptr;
    long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v <= 0 || v > 4096)
        panic("malformed %s='%s': expected a positive count", flag,
              text);
    return static_cast<unsigned>(v);
}

/**
 * One bench-specific flag. A trailing '=' in the name means the flag
 * takes a value ("--points="); otherwise it is a bare switch
 * ("--smoke"). The handler receives the value text ("" for
 * switches).
 */
struct BenchFlag
{
    const char *name;
    std::function<void(const char *)> handler;
};

/**
 * Parse the command-line flags every bench binary accepts:
 *   --seed=N           override every experiment's workload seed
 *                      (wins over JANUS_SEED)
 *   --shards=N         partition every simulated machine into N
 *                      memory channels (wins over JANUS_SHARDS)
 *   --shard-threads=N  shard-scheduler worker threads (wall time
 *                      only; results never depend on it)
 *   --shard-policy=P   address map: "interleave" or "affine"
 * plus each entry of @p extra (so benches declare their own flags as
 * a table instead of hand-rolling an argv loop). The effective seed
 * of each experiment lands in BENCH_<name>.json, so any bench run is
 * replayable from its report alone.
 */
inline void
parseBenchFlags(int argc, char **argv,
                const std::vector<BenchFlag> &extra = {})
{
    auto matchExtra = [&extra](const char *arg) {
        for (const BenchFlag &flag : extra) {
            std::size_t n = std::strlen(flag.name);
            if (flag.name[n - 1] == '=') {
                if (std::strncmp(arg, flag.name, n) == 0) {
                    flag.handler(arg + n);
                    return true;
                }
            } else if (std::strcmp(arg, flag.name) == 0) {
                flag.handler("");
                return true;
            }
        }
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--seed=", 7) == 0) {
            setSeedOverride(parseSeedLiteral(arg + 7, "--seed"));
        } else if (std::strncmp(arg, "--shards=", 9) == 0) {
            setShardOverride(parseCountFlag(arg + 9, "--shards"));
        } else if (std::strncmp(arg, "--shard-threads=", 16) == 0) {
            setShardThreadsOverride(
                parseCountFlag(arg + 16, "--shard-threads"));
        } else if (std::strncmp(arg, "--shard-policy=", 15) == 0) {
            const char *p = arg + 15;
            if (std::strcmp(p, "interleave") == 0)
                setShardPolicyOverride(
                    ShardRouterPolicy::LineInterleave);
            else if (std::strcmp(p, "affine") == 0)
                setShardPolicyOverride(
                    ShardRouterPolicy::RegionAffine);
            else
                panic("malformed --shard-policy='%s' (expected "
                      "'interleave' or 'affine')",
                      p);
        } else if (!matchExtra(arg)) {
            std::string supported =
                "--seed=N, --shards=N, --shard-threads=N, "
                "--shard-policy=interleave|affine";
            for (const BenchFlag &flag : extra) {
                supported += ", ";
                supported += flag.name;
                if (flag.name[std::strlen(flag.name) - 1] == '=')
                    supported += "...";
            }
            panic("unknown argument '%s' (supported: %s)", arg,
                  supported.c_str());
        }
    }
}

/**
 * Collects a bench's full run matrix, executes it in one parallel
 * batch, and reports wall time / events-per-second as
 * BENCH_<name>.json.
 */
class BenchRunner
{
  public:
    explicit BenchRunner(std::string name)
        : name_(std::move(name)),
          start_(std::chrono::steady_clock::now())
    {}

    /** Queue one experiment; @return its index for result(). */
    std::size_t
    add(std::string label, const RunSpec &spec)
    {
        labels_.push_back(std::move(label));
        specs_.push_back(spec);
        configs_.push_back(toConfig(spec));
        return configs_.size() - 1;
    }

    /** Queue a raw config (benches that bypass RunSpec). */
    std::size_t
    add(std::string label, const ExperimentConfig &config)
    {
        labels_.push_back(std::move(label));
        specs_.emplace_back(); // placeholder keeps vectors aligned
        specs_.back().workload = config.workloadName;
        specs_.back().mode = config.sys.mode;
        specs_.back().instr = config.instr;
        specs_.back().cores = config.sys.cores;
        specs_.back().txnsPerCore = config.workload.txnsPerCore;
        specs_.back().valueBytes = config.workload.valueBytes;
        specs_.back().dupRatio = config.workload.dupRatio;
        specs_.back().seed = config.workload.seed;
        specs_.back().shards = config.sys.shards;
        specs_.back().shardThreads = config.sys.shardThreads;
        specs_.back().shardPolicy = config.sys.shardPolicy;
        configs_.push_back(config);
        return configs_.size() - 1;
    }

    /** Execute everything queued so far on the worker pool.
     *  With JANUS_TRACE=1 one experiment (index JANUS_TRACE_EXPERIMENT,
     *  default 0) records a persist-path trace, written by writeJson()
     *  as TRACE_<name>.json. With JANUS_METRICS=1 one experiment
     *  (index JANUS_METRICS_EXPERIMENT, default 0) records a windowed
     *  time-series, written as METRICS_<name>.json. */
    void
    runAll(unsigned threads = 0)
    {
        if (traceEnvEnabled() && !configs_.empty()) {
            std::size_t idx = envIndex("JANUS_TRACE_EXPERIMENT");
            traceIndex_ = idx;
            // Mark explicitly so only this one experiment traces
            // (traceEnvEnabled() alone would trace all of them).
            for (std::size_t i = 0; i < configs_.size(); ++i)
                configs_[i].sys.trace = (i == idx);
        }
        if (metricsEnvEnabled() && !configs_.empty()) {
            std::size_t idx = envIndex("JANUS_METRICS_EXPERIMENT");
            metricsIndex_ = idx;
            for (std::size_t i = 0; i < configs_.size(); ++i)
                configs_[i].sys.metrics = (i == idx);
        }
        threads_ = resolveThreads(threads);
        results_ = runExperiments(configs_, threads_);
    }

    const ExperimentResult &
    result(std::size_t i) const
    {
        janus_assert(i < results_.size(),
                     "result %zu of %zu (did you call runAll?)", i,
                     results_.size());
        return results_[i];
    }

    std::size_t size() const { return configs_.size(); }
    unsigned threads() const { return threads_; }

    /** Write BENCH_<name>.json into the working directory. */
    void
    writeJson() const
    {
        const double wall = wallSeconds();
        std::uint64_t events = 0;
        for (const ExperimentResult &r : results_)
            events += r.eventsExecuted;

        std::string path = "BENCH_" + name_ + ".json";
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (f == nullptr) {
            warn("cannot write %s", path.c_str());
            return;
        }
        std::string seed_override = "null";
        if (std::optional<std::uint64_t> seed = seedOverride())
            seed_override = std::to_string(*seed);
        std::fprintf(f,
                     "{\n"
                     "  \"schema_version\": %d,\n"
                     "  \"bench\": \"%s\",\n"
                     "  \"threads\": %u,\n"
                     "  \"seed_override\": %s,\n"
                     "  \"wall_seconds\": %.6f,\n"
                     "  \"total_sim_events\": %llu,\n"
                     "  \"events_per_second\": %.1f,\n"
                     "  \"experiments\": [\n",
                     benchSchemaVersion, name_.c_str(), threads_,
                     seed_override.c_str(), wall,
                     static_cast<unsigned long long>(events),
                     wall > 0 ? static_cast<double>(events) / wall
                              : 0.0);
        for (std::size_t i = 0; i < results_.size(); ++i) {
            const RunSpec &s = specs_[i];
            const ExperimentResult &r = results_[i];
            const ResilienceCounters &rc = r.resilience;
            std::fprintf(
                f,
                "    {\"label\": \"%s\", \"workload\": \"%s\", "
                "\"mode\": \"%s\", \"instr\": \"%s\", "
                "\"cores\": %u, \"txns_per_core\": %u, "
                "\"shards\": %u, "
                "\"value_bytes\": %llu, \"seed\": %llu, "
                "\"makespan_ticks\": %llu, \"events\": %llu, "
                "\"wall_seconds\": %.6f, "
                "\"sim_seconds\": %.6f, "
                "\"avg_write_latency_ns\": %.2f, "
                "\"stage_bmo_ns\": %.2f, \"stage_queue_ns\": %.2f, "
                "\"stage_order_ns\": %.2f, "
                "\"persist_p50_ns\": %.2f, "
                "\"persist_p99_ns\": %.2f, "
                "\"persist_p999_ns\": %.2f, "
                // Streamlined integrity-tree engine counters (zero
                // when streamlining is off).
                "\"tree_cache_hits\": %llu, "
                "\"tree_cache_misses\": %llu, "
                "\"tree_cache_hit_rate\": %.4f, "
                "\"merkle_coalesced_levels\": %llu, "
                "\"merkle_saved_rehashes\": %llu, "
                // Schema-stable resilience block: all zero unless
                // the run enabled the fault layer.
                "\"resilience\": {\"injected\": %llu, "
                "\"corrected\": %llu, "
                "\"uncorrectable_reads\": %llu, "
                "\"retries\": %llu, \"remaps\": %llu, "
                "\"irb_ecc_faults\": %llu, "
                "\"dedup_bypasses\": %llu, "
                "\"watchdog_trips\": %llu, "
                "\"scrubbed\": %llu, "
                "\"degraded_ns\": %.1f, "
                "\"data_loss_lines\": %llu}, ",
                labels_[i].c_str(), s.workload.c_str(),
                modeName(s.mode), instrName(s.instr), s.cores,
                s.txnsPerCore, shardOverride().value_or(s.shards),
                static_cast<unsigned long long>(s.valueBytes),
                static_cast<unsigned long long>(
                    seedOverride().value_or(s.seed)),
                static_cast<unsigned long long>(r.makespan),
                static_cast<unsigned long long>(r.eventsExecuted),
                r.wallSeconds, r.simSeconds, r.avgWriteLatencyNs,
                r.stageBmoNs,
                r.stageQueueNs, r.stageOrderNs, r.persistP50Ns,
                r.persistP99Ns, r.persistP999Ns,
                static_cast<unsigned long long>(r.treeCacheHits),
                static_cast<unsigned long long>(r.treeCacheMisses),
                r.treeCacheHitRate,
                static_cast<unsigned long long>(
                    r.merkleCoalescedLevels),
                static_cast<unsigned long long>(r.merkleSavedRehashes),
                static_cast<unsigned long long>(
                    rc.transientFlipsInjected + rc.stuckCellsInjected),
                static_cast<unsigned long long>(rc.correctedReads +
                                                rc.correctedWrites),
                static_cast<unsigned long long>(
                    rc.uncorrectableReads),
                static_cast<unsigned long long>(rc.readRetries +
                                                rc.writeRetries),
                static_cast<unsigned long long>(rc.remaps),
                static_cast<unsigned long long>(rc.irbEccFaults),
                static_cast<unsigned long long>(rc.dedupBypasses),
                static_cast<unsigned long long>(rc.watchdogTrips),
                static_cast<unsigned long long>(rc.scrubbed),
                ticks::toNsF(rc.degradedTicks),
                static_cast<unsigned long long>(rc.dataLossLines));
            writeCritPath(f, r.critPath);
            if (!r.tenants.empty())
                writeTenants(f, r.tenants);
            std::fprintf(f, "}%s\n",
                         i + 1 < results_.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        writeTrace();
        writeMetrics();
        writeFolded();
        std::printf("\n[%s: %zu experiments on %u threads, %.2fs "
                    "wall, %.2fM events/s -> %s]\n",
                    name_.c_str(), results_.size(), threads_, wall,
                    wall > 0 ? static_cast<double>(events) / wall /
                                   1e6
                             : 0.0,
                    path.c_str());
    }

    double
    wallSeconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    /** Write TRACE_<name>.json if some experiment recorded a trace
     *  (writeJson calls this; separate for benches that don't). */
    void
    writeTrace() const
    {
        if (traceIndex_ >= results_.size() ||
            results_[traceIndex_].traceJson.empty())
            return;
        const ExperimentResult &r = results_[traceIndex_];
        std::string path = "TRACE_" + name_ + ".json";
        std::ofstream out(path);
        if (!out) {
            warn("cannot write %s", path.c_str());
            return;
        }
        out << r.traceJson;
        std::printf("[%s: trace of '%s' (%llu events, %llu dropped) "
                    "-> %s]\n",
                    name_.c_str(), labels_[traceIndex_].c_str(),
                    static_cast<unsigned long long>(
                        r.traceEventsRecorded),
                    static_cast<unsigned long long>(
                        r.traceEventsDropped),
                    path.c_str());
    }

    /** Write METRICS_<name>.json if some experiment sampled a
     *  time-series (writeJson calls this). */
    void
    writeMetrics() const
    {
        if (metricsIndex_ >= results_.size() ||
            results_[metricsIndex_].metricsJson.empty())
            return;
        const ExperimentResult &r = results_[metricsIndex_];
        std::string path = "METRICS_" + name_ + ".json";
        std::ofstream out(path);
        if (!out) {
            warn("cannot write %s", path.c_str());
            return;
        }
        out << r.metricsJson;
        std::printf("[%s: metrics of '%s' (%llu windows) -> %s]\n",
                    name_.c_str(), labels_[metricsIndex_].c_str(),
                    static_cast<unsigned long long>(
                        r.metricsWindows),
                    path.c_str());
    }

    /** Write FLAME_<name>.folded: folded-stack critical-path lines
     *  of every profiled experiment (writeJson calls this). */
    void
    writeFolded() const
    {
        bool any = false;
        for (const ExperimentResult &r : results_)
            any = any || r.critPath.persists > 0;
        if (!any)
            return;
        std::string path = "FLAME_" + name_ + ".folded";
        std::ofstream out(path);
        if (!out) {
            warn("cannot write %s", path.c_str());
            return;
        }
        for (std::size_t i = 0; i < results_.size(); ++i) {
            if (results_[i].critPath.persists == 0)
                continue;
            // Folded frames are ';'-separated and the count follows
            // a space, so neither may appear inside the prefix.
            std::string prefix = labels_[i];
            for (char &c : prefix)
                if (c == ';' || c == ' ')
                    c = '_';
            writeFoldedSummary(results_[i].critPath, out, prefix);
        }
    }

  private:
    /** Experiment index from an environment variable (clamped). */
    std::size_t
    envIndex(const char *var) const
    {
        std::size_t idx = 0;
        if (const char *e = std::getenv(var))
            idx = static_cast<std::size_t>(
                std::strtoull(e, nullptr, 10));
        return idx < configs_.size() ? idx : 0;
    }

    /** One experiment's "critical_path" JSON object. */
    static void
    writeCritPath(std::FILE *f, const CritPathSummary &cp)
    {
        std::fprintf(f,
                     "\"critical_path\": {\"persists\": %llu, "
                     "\"total_ns\": %.1f, \"share_sum\": %.6f, "
                     "\"edges\": {",
                     static_cast<unsigned long long>(cp.persists),
                     ticks::toNsF(cp.totalTicks), cp.shareSum());
        for (std::size_t e = 0; e < numCritEdges; ++e) {
            CritEdge edge = static_cast<CritEdge>(e);
            std::fprintf(
                f, "%s\"%s\": {\"ns\": %.1f, \"share\": %.6f}",
                e == 0 ? "" : ", ", critEdgeName(edge),
                ticks::toNsF(cp.ticksOf(edge)), cp.share(edge));
        }
        std::fprintf(f, "}}");
    }

    /** One experiment's per-tenant open-loop accounting array. */
    static void
    writeTenants(std::FILE *f,
                 const std::vector<OpenLoopTenantStats> &tenants)
    {
        std::fprintf(f, ", \"tenants\": [");
        for (std::size_t t = 0; t < tenants.size(); ++t) {
            const OpenLoopTenantStats &ts = tenants[t];
            std::fprintf(
                f,
                "%s{\"name\": \"%s\", \"priority\": %u, "
                "\"offered\": %llu, \"completed\": %llu, "
                "\"shed\": %llu, \"rejected\": %llu, "
                "\"retries\": %llu, \"max_backlog\": %llu, "
                "\"diverged\": %s, "
                "\"mean_ns\": %.2f, \"p50_ns\": %.2f, "
                "\"p99_ns\": %.2f, \"p999_ns\": %.2f}",
                t == 0 ? "" : ", ", ts.name.c_str(), ts.priority,
                static_cast<unsigned long long>(ts.offered),
                static_cast<unsigned long long>(ts.completed),
                static_cast<unsigned long long>(ts.shed),
                static_cast<unsigned long long>(ts.rejected),
                static_cast<unsigned long long>(ts.retries),
                static_cast<unsigned long long>(ts.maxBacklog),
                ts.diverged ? "true" : "false", ts.meanNs, ts.p50Ns,
                ts.p99Ns, ts.p999Ns);
        }
        std::fprintf(f, "]");
    }

    std::string name_;
    std::chrono::steady_clock::time_point start_;
    unsigned threads_ = 0;
    /** Which experiment traces when JANUS_TRACE is set. */
    std::size_t traceIndex_ = ~std::size_t(0);
    /** Which experiment samples when JANUS_METRICS is set. */
    std::size_t metricsIndex_ = ~std::size_t(0);
    std::vector<std::string> labels_;
    std::vector<RunSpec> specs_;
    std::vector<ExperimentConfig> configs_;
    std::vector<ExperimentResult> results_;
};

/**
 * Minimal JSON for benches with no experiment matrix (latency
 * probes, hardware-overhead arithmetic): wall time plus named
 * scalar metrics.
 */
inline void
writeSimpleJson(const std::string &name, double wall_seconds,
                const std::vector<std::pair<std::string, double>>
                    &metrics)
{
    std::string path = "BENCH_" + name + ".json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn("cannot write %s", path.c_str());
        return;
    }
    std::string seed_override = "null";
    if (std::optional<std::uint64_t> seed = seedOverride())
        seed_override = std::to_string(*seed);
    std::fprintf(f,
                 "{\n"
                 "  \"schema_version\": %d,\n"
                 "  \"bench\": \"%s\",\n"
                 "  \"seed_override\": %s,\n"
                 "  \"wall_seconds\": %.6f,\n"
                 "  \"experiments\": [],\n"
                 "  \"metrics\": {",
                 benchSchemaVersion, name.c_str(),
                 seed_override.c_str(), wall_seconds);
    for (std::size_t i = 0; i < metrics.size(); ++i)
        std::fprintf(f, "%s\"%s\": %.6f",
                     i == 0 ? "" : ", ", metrics[i].first.c_str(),
                     metrics[i].second);
    std::fprintf(f, "}\n}\n");
    std::fclose(f);
}

/** makespan(a) / makespan(b). */
inline double
ratio(const ExperimentResult &a, const ExperimentResult &b)
{
    return static_cast<double>(a.makespan) /
           static_cast<double>(b.makespan);
}

inline double
geomean(const std::vector<double> &xs)
{
    double acc = 0;
    for (double x : xs)
        acc += std::log(x);
    return xs.empty() ? 0 : std::exp(acc / xs.size());
}

/** Print a header row then rule. */
inline void
printHeader(const char *title, const std::vector<std::string> &cols)
{
    std::printf("\n=== %s ===\n%-12s", title, "workload");
    for (const auto &c : cols)
        std::printf(" %10s", c.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < 13 + 11 * cols.size(); ++i)
        std::printf("-");
    std::printf("\n");
}

inline void
printRow(const std::string &name, const std::vector<double> &vals,
         const char *fmt = " %10.2f")
{
    std::printf("%-12s", name.c_str());
    for (double v : vals)
        std::printf(fmt, v);
    std::printf("\n");
}

} // namespace janus::bench

#endif // JANUS_BENCH_BENCH_COMMON_HH
