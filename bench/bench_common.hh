/**
 * @file
 * Shared plumbing for the figure/table reproduction benches: a
 * one-call experiment runner plus consistent table printing. Each
 * bench binary regenerates the rows/series of one paper figure or
 * table; EXPERIMENTS.md records paper-vs-measured.
 */

#ifndef JANUS_BENCH_BENCH_COMMON_HH
#define JANUS_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cmath>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "harness/experiment.hh"

namespace janus::bench
{

/** Knobs one figure point needs. */
struct RunSpec
{
    std::string workload = "array_swap";
    WritePathMode mode = WritePathMode::Serialized;
    Instrumentation instr = Instrumentation::None;
    unsigned cores = 1;
    unsigned txnsPerCore = 200;
    std::uint64_t valueBytes = 64;
    double dupRatio = 0.5;
    DedupHash dedupHash = DedupHash::Md5;
    unsigned resourceScale = 1;
    bool unlimitedResources = false;
    bool nonBlockingWriteback = false;
    std::uint64_t seed = 1;
};

inline ExperimentResult
run(const RunSpec &spec)
{
    ExperimentConfig config;
    config.workloadName = spec.workload;
    config.sys.mode = spec.mode;
    config.sys.cores = spec.cores;
    config.sys.bmo.dedupHash = spec.dedupHash;
    config.sys.resourceScale = spec.resourceScale;
    config.sys.unlimitedResources = spec.unlimitedResources;
    config.sys.core.nonBlockingWriteback = spec.nonBlockingWriteback;
    config.instr = spec.instr;
    config.workload.txnsPerCore = spec.txnsPerCore;
    config.workload.valueBytes = spec.valueBytes;
    config.workload.dupRatio = spec.dupRatio;
    config.workload.seed = spec.seed;
    return runExperiment(config);
}

/** makespan(a) / makespan(b). */
inline double
ratio(const ExperimentResult &a, const ExperimentResult &b)
{
    return static_cast<double>(a.makespan) /
           static_cast<double>(b.makespan);
}

inline double
geomean(const std::vector<double> &xs)
{
    double acc = 0;
    for (double x : xs)
        acc += std::log(x);
    return xs.empty() ? 0 : std::exp(acc / xs.size());
}

/** Print a header row then rule. */
inline void
printHeader(const char *title, const std::vector<std::string> &cols)
{
    std::printf("\n=== %s ===\n%-12s", title, "workload");
    for (const auto &c : cols)
        std::printf(" %10s", c.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < 13 + 11 * cols.size(); ++i)
        std::printf("-");
    std::printf("\n");
}

inline void
printRow(const std::string &name, const std::vector<double> &vals,
         const char *fmt = " %10.2f")
{
    std::printf("%-12s", name.c_str());
    for (double v : vals)
        std::printf(fmt, v);
    std::printf("\n");
}

} // namespace janus::bench

#endif // JANUS_BENCH_BENCH_COMMON_HH
