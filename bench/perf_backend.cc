/**
 * @file
 * Functional-backend microbenchmark: lines/sec of the current
 * BmoBackendState fast path (T-table AES, lazy batched Merkle
 * updates, POD fingerprints, page-cached SparseMemory) against a
 * faithful replica of the seed kernels (byte-wise AES rounds, eager
 * per-update Merkle propagation, std::string fingerprints, uncached
 * page-map memory). Both pipelines run identical mixed dup/unique
 * traffic:
 *
 *  - seq_unique:  sequential addresses, all-unique values (encrypt +
 *                 MAC + Merkle dominant)
 *  - dup_heavy:   random addresses over a small value pool (~50%+
 *                 dedup hits, fingerprint/table dominant)
 *  - overwrite:   in-place rewrites of a hot working set (counter
 *                 bumps, no fresh allocation)
 *  - read_back:   full verify read path (decrypt + MAC + tree walk)
 *  - peek_dedup:  side-effect-free duplicate probes
 *
 * Before timing, every scenario is replayed through both backends
 * and checked bit-for-bit: identical per-write outcomes, Merkle
 * root and ciphertext-image content hash. Writes
 * BENCH_perf_backend.json with per-scenario seed/current lines/sec,
 * the writeLine speedup (the PR's >= 3x acceptance gate) and the
 * per-kernel share of write cost.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "bmo/backend_state.hh"
#include "common/random.hh"
#include "crypto/crc32.hh"
#include "crypto/md5.hh"
#include "crypto/sha1.hh"

namespace
{

using namespace janus;

// ---------------------------------------------------------------
// Seed-kernel replicas, verbatim from the pre-fast-path sources.
// ---------------------------------------------------------------
namespace legacy
{

const std::uint8_t sbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5,
    0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc,
    0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a,
    0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85,
    0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17,
    0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88,
    0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9,
    0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6,
    0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94,
    0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68,
    0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
};

const std::uint8_t rcon[11] = {
    0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
    0x20, 0x40, 0x80, 0x1b, 0x36,
};

std::uint8_t
gmul(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
        if (b & 1)
            p ^= a;
        bool hi = a & 0x80;
        a <<= 1;
        if (hi)
            a ^= 0x1b;
        b >>= 1;
    }
    return p;
}

/** The seed byte-wise AES-128 (encrypt + OTP only). */
class Aes
{
  public:
    explicit Aes(const Aes128::Key &key)
    {
        std::memcpy(roundKeys_.data(), key.data(), 16);
        for (unsigned i = 4; i < 44; ++i) {
            std::uint8_t temp[4];
            std::memcpy(temp, roundKeys_.data() + 4 * (i - 1), 4);
            if (i % 4 == 0) {
                std::uint8_t t0 = temp[0];
                temp[0] = static_cast<std::uint8_t>(sbox[temp[1]] ^
                                                    rcon[i / 4]);
                temp[1] = sbox[temp[2]];
                temp[2] = sbox[temp[3]];
                temp[3] = sbox[t0];
            }
            for (unsigned j = 0; j < 4; ++j)
                roundKeys_[4 * i + j] = static_cast<std::uint8_t>(
                    roundKeys_[4 * (i - 4) + j] ^ temp[j]);
        }
    }

    Aes128::Block
    encryptBlock(const Aes128::Block &in) const
    {
        std::uint8_t st[16];
        std::memcpy(st, in.data(), 16);

        auto add_round_key = [&](unsigned round) {
            for (unsigned i = 0; i < 16; ++i)
                st[i] ^= roundKeys_[16 * round + i];
        };
        auto sub_bytes = [&]() {
            for (auto &b : st)
                b = sbox[b];
        };
        auto shift_rows = [&]() {
            std::uint8_t t[16];
            std::memcpy(t, st, 16);
            for (unsigned row = 1; row < 4; ++row)
                for (unsigned col = 0; col < 4; ++col)
                    st[4 * col + row] =
                        t[4 * ((col + row) % 4) + row];
        };
        auto mix_columns = [&]() {
            for (unsigned col = 0; col < 4; ++col) {
                std::uint8_t *c = st + 4 * col;
                std::uint8_t a0 = c[0], a1 = c[1], a2 = c[2],
                             a3 = c[3];
                c[0] = gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3;
                c[1] = a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3;
                c[2] = a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3);
                c[3] = gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2);
            }
        };

        add_round_key(0);
        for (unsigned round = 1; round < 10; ++round) {
            sub_bytes();
            shift_rows();
            mix_columns();
            add_round_key(round);
        }
        sub_bytes();
        shift_rows();
        add_round_key(10);

        Aes128::Block out;
        std::memcpy(out.data(), st, 16);
        return out;
    }

    CacheLine
    otp(std::uint64_t counter, Addr line_addr) const
    {
        CacheLine pad;
        for (unsigned blk = 0; blk < lineBytes / 16; ++blk) {
            Aes128::Block in{};
            std::memcpy(in.data(), &counter, 8);
            std::uint64_t tweak =
                line_addr | (std::uint64_t(blk) << 58);
            std::memcpy(in.data() + 8, &tweak, 8);
            Aes128::Block out = encryptBlock(in);
            pad.write(16 * blk, out.data(), 16);
        }
        return pad;
    }

  private:
    std::array<std::uint8_t, 176> roundKeys_;
};

/** The seed eager sparse Merkle tree. */
class MerkleTree
{
  public:
    static constexpr unsigned fanout = 8;
    static constexpr unsigned fanoutShift = 3;

    explicit MerkleTree(unsigned levels, unsigned leaf_bytes = 16)
        : levels_(levels), leafBytes_(leaf_bytes),
          nodes_(levels + 1), defaults_(levels + 1)
    {
        std::vector<std::uint8_t> zero(leafBytes_, 0);
        defaults_[0] = Sha1::hash(zero.data(), zero.size());
        for (unsigned level = 1; level <= levels_; ++level) {
            Sha1 hasher;
            for (unsigned c = 0; c < fanout; ++c)
                hasher.update(defaults_[level - 1].bytes.data(),
                              defaults_[level - 1].bytes.size());
            defaults_[level] = hasher.finish();
        }
        root_ = defaults_[levels_];
    }

    void
    update(std::uint64_t leaf_index, const void *leaf_data)
    {
        nodes_[0][leaf_index] = Sha1::hash(leaf_data, leafBytes_);
        std::uint64_t index = leaf_index;
        for (unsigned level = 1; level <= levels_; ++level) {
            index >>= fanoutShift;
            nodes_[level][index] = hashChildren(level, index);
        }
        root_ = node(levels_, 0);
    }

    bool
    verifyLeaf(std::uint64_t leaf_index, const void *leaf_data) const
    {
        Sha1Digest leaf = Sha1::hash(leaf_data, leafBytes_);
        if (!(leaf == node(0, leaf_index)))
            return false;
        std::uint64_t index = leaf_index;
        for (unsigned level = 1; level <= levels_; ++level) {
            index >>= fanoutShift;
            Sha1Digest derived = hashChildren(level, index);
            if (!(derived == node(level, index)))
                return false;
        }
        return node(levels_, 0) == root_;
    }

    const Sha1Digest &root() const { return root_; }

  private:
    const Sha1Digest &
    node(unsigned level, std::uint64_t index) const
    {
        const auto &map = nodes_[level];
        auto it = map.find(index);
        return it == map.end() ? defaults_[level] : it->second;
    }

    Sha1Digest
    hashChildren(unsigned level, std::uint64_t index) const
    {
        Sha1 hasher;
        for (unsigned c = 0; c < fanout; ++c) {
            const Sha1Digest &child =
                node(level - 1, index * fanout + c);
            hasher.update(child.bytes.data(), child.bytes.size());
        }
        return hasher.finish();
    }

    unsigned levels_;
    unsigned leafBytes_;
    std::vector<std::unordered_map<std::uint64_t, Sha1Digest>>
        nodes_;
    std::vector<Sha1Digest> defaults_;
    Sha1Digest root_;
};

/** The seed page-map memory (no last-page cache, loop copies). */
class SparseMemory
{
  public:
    static constexpr unsigned pageBytes = 4096;

    void
    read(Addr addr, void *dst, unsigned size) const
    {
        auto *out = static_cast<std::uint8_t *>(dst);
        while (size > 0) {
            Addr off = addr % pageBytes;
            unsigned take = static_cast<unsigned>(
                std::min<Addr>(size, pageBytes - off));
            auto it = pages_.find(addr / pageBytes);
            if (it != pages_.end())
                std::memcpy(out, it->second->data() + off, take);
            else
                std::memset(out, 0, take);
            addr += take;
            out += take;
            size -= take;
        }
    }

    void
    write(Addr addr, const void *src, unsigned size)
    {
        const auto *in = static_cast<const std::uint8_t *>(src);
        while (size > 0) {
            Addr off = addr % pageBytes;
            unsigned take = static_cast<unsigned>(
                std::min<Addr>(size, pageBytes - off));
            auto &slot = pages_[addr / pageBytes];
            if (!slot) {
                slot = std::make_unique<Page>();
                slot->fill(0);
            }
            std::memcpy(slot->data() + off, in, take);
            addr += take;
            in += take;
            size -= take;
        }
    }

    CacheLine
    readLine(Addr line_addr) const
    {
        CacheLine line;
        read(line_addr, line.data(), lineBytes);
        return line;
    }

    void
    writeLine(Addr line_addr, const CacheLine &line)
    {
        write(line_addr, line.data(), lineBytes);
    }

    std::uint64_t
    contentHash() const
    {
        std::uint64_t combined = 0;
        for (const auto &[page_no, page] : pages_) {
            bool all_zero = true;
            for (std::uint8_t byte : *page)
                all_zero &= byte == 0;
            if (all_zero)
                continue;
            std::uint64_t h = 1469598103934665603ull ^ page_no;
            for (std::uint8_t byte : *page) {
                h ^= byte;
                h *= 1099511628211ull;
            }
            combined ^= h;
        }
        return combined;
    }

  private:
    using Page = std::array<std::uint8_t, pageBytes>;
    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
};

/**
 * The seed BmoBackendState, std::string fingerprints and all,
 * reduced to the three drivable entry points.
 */
class Backend
{
  public:
    explicit Backend(const BmoConfig &config,
                     const Aes128::Key &key =
                         BmoBackendState::defaultKey())
        : config_(config), aes_(key), tree_(config.merkleLevels, 16)
    {
    }

    WriteOutcome
    writeLine(Addr line_addr, const CacheLine &plaintext)
    {
        WriteOutcome outcome;
        auto old_it = meta_.find(line_addr);
        MetaEntry old =
            old_it == meta_.end() ? MetaEntry{} : old_it->second;

        if (config_.deduplication) {
            std::string fp = fingerprint(plaintext);
            auto hit = dedupTable_.find(fp);
            if (hit != dedupTable_.end()) {
                std::uint64_t phys = hit->second;
                ReadOutcome stored = readPhys(phys);
                if (stored.data == plaintext) {
                    outcome.duplicate = true;
                    outcome.phys = phys;
                    outcome.counter = physLines_.at(phys).counter;
                    if (old.valid && old.phys == phys)
                        return outcome;
                    physLines_.at(phys).refCount++;
                    if (old.valid)
                        releasePhys(old.phys);
                    MetaEntry entry;
                    entry.valid = true;
                    entry.dup = true;
                    entry.phys = phys;
                    entry.counter = physLines_.at(phys).counter;
                    installMeta(line_addr, entry);
                    return outcome;
                }
            }
        }

        std::uint64_t phys;
        std::uint64_t counter;
        if (old.valid && !old.dup &&
            physLines_.at(old.phys).refCount == 1) {
            phys = old.phys;
            PhysLine &pl = physLines_.at(phys);
            auto fp_it = dedupTable_.find(pl.fingerprint);
            if (fp_it != dedupTable_.end() && fp_it->second == phys)
                dedupTable_.erase(fp_it);
            counter = pl.counter + 1;
        } else {
            if (old.valid)
                releasePhys(old.phys);
            phys = allocPhys();
            physLines_[phys] = PhysLine{};
            physLines_[phys].refCount = 1;
            counter = 1;
            outcome.newPhysLine = true;
        }

        CacheLine cipher = plaintext;
        if (config_.encryption) {
            CacheLine otp = aes_.otp(counter, phys << lineShift);
            cipher ^= otp;
        }
        storage_.writeLine(phys << lineShift, cipher);

        PhysLine &pl = physLines_.at(phys);
        pl.counter = counter;
        pl.fingerprint = config_.deduplication
                             ? fingerprint(plaintext)
                             : std::string();
        if (config_.integrity)
            pl.mac = computeMac(cipher, counter);
        if (config_.deduplication)
            dedupTable_[pl.fingerprint] = phys;

        MetaEntry entry;
        entry.valid = true;
        entry.dup = false;
        entry.phys = phys;
        entry.counter = counter;
        installMeta(line_addr, entry);

        outcome.phys = phys;
        outcome.counter = counter;
        return outcome;
    }

    ReadOutcome
    readLine(Addr line_addr) const
    {
        ReadOutcome outcome;
        auto it = meta_.find(line_addr);
        if (it == meta_.end() || !it->second.valid) {
            outcome.macOk = true;
            outcome.treeOk = true;
            return outcome;
        }
        const MetaEntry &entry = it->second;
        outcome = readPhys(entry.phys);
        if (config_.integrity) {
            std::uint8_t leaf[16];
            entry.serialize(leaf);
            outcome.treeOk =
                tree_.verifyLeaf(line_addr >> lineShift, leaf);
        } else {
            outcome.treeOk = true;
        }
        return outcome;
    }

    std::optional<std::uint64_t>
    peekDedup(const CacheLine &line) const
    {
        if (!config_.deduplication)
            return std::nullopt;
        auto it = dedupTable_.find(fingerprint(line));
        if (it == dedupTable_.end())
            return std::nullopt;
        ReadOutcome stored = readPhys(it->second);
        if (!(stored.data == line))
            return std::nullopt;
        return it->second;
    }

    const Sha1Digest &merkleRoot() const { return tree_.root(); }
    std::uint64_t
    storageContentHash() const
    {
        return storage_.contentHash();
    }

  private:
    struct PhysLine
    {
        std::uint32_t refCount = 0;
        std::uint64_t counter = 0;
        std::string fingerprint;
        Sha1Digest mac;
    };

    std::string
    fingerprint(const CacheLine &line) const
    {
        if (config_.dedupHash == DedupHash::Md5) {
            Md5Digest digest = Md5::hash(line.data(), line.size());
            return std::string(reinterpret_cast<const char *>(
                                   digest.bytes.data()),
                               digest.bytes.size());
        }
        std::uint32_t crc = crc32(line.data(), line.size());
        return std::string(reinterpret_cast<const char *>(&crc),
                           sizeof(crc));
    }

    std::uint64_t
    allocPhys()
    {
        if (!freePhys_.empty()) {
            std::uint64_t phys = freePhys_.back();
            freePhys_.pop_back();
            return phys;
        }
        return nextPhys_++;
    }

    void
    releasePhys(std::uint64_t phys)
    {
        auto it = physLines_.find(phys);
        if (--it->second.refCount == 0) {
            auto fp_it = dedupTable_.find(it->second.fingerprint);
            if (fp_it != dedupTable_.end() && fp_it->second == phys)
                dedupTable_.erase(fp_it);
            physLines_.erase(it);
            freePhys_.push_back(phys);
        }
    }

    void
    installMeta(Addr line_addr, const MetaEntry &entry)
    {
        meta_[line_addr] = entry;
        if (config_.integrity) {
            std::uint8_t leaf[16];
            entry.serialize(leaf);
            tree_.update(line_addr >> lineShift, leaf);
        }
    }

    Sha1Digest
    computeMac(const CacheLine &cipher, std::uint64_t counter) const
    {
        Sha1 hasher;
        hasher.update(cipher.data(), cipher.size());
        hasher.update(&counter, sizeof(counter));
        return hasher.finish();
    }

    ReadOutcome
    readPhys(std::uint64_t phys) const
    {
        ReadOutcome outcome;
        auto it = physLines_.find(phys);
        if (it == physLines_.end()) {
            outcome.macOk = true;
            outcome.treeOk = true;
            return outcome;
        }
        const PhysLine &pl = it->second;
        CacheLine cipher = storage_.readLine(phys << lineShift);
        outcome.macOk = config_.integrity
                            ? computeMac(cipher, pl.counter) == pl.mac
                            : true;
        outcome.treeOk = true;
        if (config_.encryption) {
            CacheLine otp = aes_.otp(pl.counter, phys << lineShift);
            cipher ^= otp;
        }
        outcome.data = cipher;
        return outcome;
    }

    BmoConfig config_;
    Aes aes_;
    MerkleTree tree_;
    std::unordered_map<Addr, MetaEntry> meta_;
    std::unordered_map<std::string, std::uint64_t> dedupTable_;
    std::unordered_map<std::uint64_t, PhysLine> physLines_;
    SparseMemory storage_;
    std::uint64_t nextPhys_ = 1;
    std::vector<std::uint64_t> freePhys_;
};

} // namespace legacy

// ---------------------------------------------------------------
// Traffic generation and measurement.
// ---------------------------------------------------------------

struct Op
{
    Addr addr;
    CacheLine data;
};

std::vector<Op>
seqUniqueTraffic(std::size_t n, std::size_t working_lines)
{
    std::vector<Op> ops;
    ops.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        ops.push_back({static_cast<Addr>(i % working_lines) *
                           lineBytes,
                       CacheLine::fromSeed(0x10000 + i)});
    return ops;
}

std::vector<Op>
dupHeavyTraffic(std::size_t n, std::size_t working_lines,
                std::uint64_t value_pool)
{
    Rng rng(1234);
    std::vector<Op> ops;
    ops.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        ops.push_back(
            {static_cast<Addr>(rng.below(working_lines)) * lineBytes,
             CacheLine::fromSeed(rng.below(value_pool))});
    return ops;
}

std::vector<Op>
overwriteTraffic(std::size_t n, std::size_t working_lines)
{
    std::vector<Op> ops;
    ops.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        ops.push_back({static_cast<Addr>(i % working_lines) *
                           lineBytes,
                       CacheLine::fromSeed(0x900000 + i * 7)});
    return ops;
}

template <typename Backend>
double
timeWrites(const BmoConfig &config, const std::vector<Op> &ops)
{
    double best = 0;
    for (int rep = 0; rep < 3; ++rep) {
        Backend backend(config);
        auto t0 = std::chrono::steady_clock::now();
        for (const Op &op : ops)
            backend.writeLine(op.addr, op.data);
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        best = std::max(best, static_cast<double>(ops.size()) / secs);
    }
    return best;
}

template <typename Backend>
double
timeReads(const BmoConfig &config, const std::vector<Op> &prep,
          std::size_t reads)
{
    Backend backend(config);
    for (const Op &op : prep)
        backend.writeLine(op.addr, op.data);
    double best = 0;
    for (int rep = 0; rep < 3; ++rep) {
        std::uint64_t checksum = 0;
        auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < reads; ++i) {
            ReadOutcome out = backend.readLine(
                prep[i % prep.size()].addr);
            checksum += out.data.word(0);
        }
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        if (checksum == 0xDEAD)
            std::printf(" "); // keep the loop observable
        best = std::max(best,
                        static_cast<double>(reads) / secs);
    }
    return best;
}

template <typename Backend>
double
timePeeks(const BmoConfig &config, const std::vector<Op> &prep,
          std::size_t peeks)
{
    Backend backend(config);
    for (const Op &op : prep)
        backend.writeLine(op.addr, op.data);
    double best = 0;
    for (int rep = 0; rep < 3; ++rep) {
        std::size_t hits = 0;
        auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < peeks; ++i) {
            // Alternate present values and misses.
            CacheLine probe =
                (i & 1) ? prep[i % prep.size()].data
                        : CacheLine::fromSeed(0xF00D0000 + i);
            hits += backend.peekDedup(probe).has_value();
        }
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        if (hits == 0 && peeks > 0 && config.deduplication)
            warn("peek_dedup: no hits, probe mix is broken");
        best = std::max(best,
                        static_cast<double>(peeks) / secs);
    }
    return best;
}

/**
 * Replay the scenario through both pipelines and require identical
 * per-write outcomes, Merkle root, content hash and read-back.
 */
bool
checkBitEquality(const BmoConfig &config, const std::vector<Op> &ops,
                 const char *name)
{
    legacy::Backend seed(config);
    BmoBackendState current(config);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        WriteOutcome a = seed.writeLine(ops[i].addr, ops[i].data);
        WriteOutcome b = current.writeLine(ops[i].addr, ops[i].data);
        if (a.duplicate != b.duplicate ||
            a.newPhysLine != b.newPhysLine || a.phys != b.phys ||
            a.counter != b.counter) {
            std::fprintf(stderr,
                         "%s: write %zu outcome diverged\n", name,
                         i);
            return false;
        }
    }
    if (!(seed.merkleRoot() == current.merkleRoot())) {
        std::fprintf(stderr, "%s: Merkle root diverged\n", name);
        return false;
    }
    if (seed.storageContentHash() != current.storageContentHash()) {
        std::fprintf(stderr, "%s: content hash diverged\n", name);
        return false;
    }
    for (std::size_t i = 0; i < ops.size(); i += 97) {
        ReadOutcome a = seed.readLine(ops[i].addr);
        ReadOutcome b = current.readLine(ops[i].addr);
        if (!(a.data == b.data) || a.macOk != b.macOk ||
            a.treeOk != b.treeOk) {
            std::fprintf(stderr, "%s: read-back diverged\n", name);
            return false;
        }
        auto pa = seed.peekDedup(ops[i].data);
        auto pb = current.peekDedup(ops[i].data);
        if (pa != pb) {
            std::fprintf(stderr, "%s: peekDedup diverged\n", name);
            return false;
        }
    }
    return true;
}

} // namespace

int
main()
{
    using janus::bench::geomean;
    using janus::bench::writeSimpleJson;

    const auto wall_start = std::chrono::steady_clock::now();
    BmoConfig config; // all three paper BMOs on, MD5 dedup

    constexpr std::size_t kOps = 16384;
    constexpr std::size_t kWorkingLines = 4096;
    const std::vector<Op> seq = seqUniqueTraffic(kOps, kWorkingLines);
    const std::vector<Op> dup =
        dupHeavyTraffic(kOps, kWorkingLines, 48);
    const std::vector<Op> over = overwriteTraffic(kOps, 1024);

    // Hard gate: the fast path must be bit-identical before any
    // number is reported.
    if (!checkBitEquality(config, seq, "seq_unique") ||
        !checkBitEquality(config, dup, "dup_heavy") ||
        !checkBitEquality(config, over, "overwrite"))
        return 1;
    BmoConfig crc = config;
    crc.dedupHash = DedupHash::Crc32;
    if (!checkBitEquality(crc, dup, "dup_heavy_crc32"))
        return 1;
    std::printf("[bit-equality: seed and fast-path backends agree "
                "on all scenarios]\n");

    struct Row
    {
        const char *name;
        double seed_lps;
        double current_lps;
        bool isWrite;
    };
    std::vector<Row> rows;
    rows.push_back({"seq_unique",
                    timeWrites<legacy::Backend>(config, seq),
                    timeWrites<BmoBackendState>(config, seq), true});
    rows.push_back({"dup_heavy",
                    timeWrites<legacy::Backend>(config, dup),
                    timeWrites<BmoBackendState>(config, dup), true});
    rows.push_back({"overwrite",
                    timeWrites<legacy::Backend>(config, over),
                    timeWrites<BmoBackendState>(config, over), true});
    rows.push_back({"read_back",
                    timeReads<legacy::Backend>(config, seq, kOps),
                    timeReads<BmoBackendState>(config, seq, kOps),
                    false});
    rows.push_back({"peek_dedup",
                    timePeeks<legacy::Backend>(config, seq, kOps),
                    timePeeks<BmoBackendState>(config, seq, kOps),
                    false});

    std::printf("\n=== perf_backend: functional kernel lines/sec, "
                "seed vs fast path ===\n");
    std::printf("%-12s %14s %14s %9s\n", "scenario", "seed (K/s)",
                "current (K/s)", "speedup");
    std::vector<std::pair<std::string, double>> metrics;
    std::vector<double> write_speedups, all_speedups;
    for (const Row &r : rows) {
        double speedup = r.current_lps / r.seed_lps;
        all_speedups.push_back(speedup);
        if (r.isWrite)
            write_speedups.push_back(speedup);
        std::printf("%-12s %14.1f %14.1f %8.2fx\n", r.name,
                    r.seed_lps / 1e3, r.current_lps / 1e3, speedup);
        metrics.emplace_back(std::string(r.name) + "_seed_lps",
                             r.seed_lps);
        metrics.emplace_back(std::string(r.name) + "_current_lps",
                             r.current_lps);
        metrics.emplace_back(std::string(r.name) + "_speedup",
                             speedup);
    }
    double write_geomean = geomean(write_speedups);
    std::printf("%-12s %14s %14s %8.2fx  (writeLine geomean; "
                "acceptance gate >= 3x)\n",
                "geomean", "", "", write_geomean);
    metrics.emplace_back("writeline_geomean_speedup", write_geomean);
    metrics.emplace_back("overall_geomean_speedup",
                         geomean(all_speedups));

    // Per-kernel share of writeLine cost: time each BMO solo on the
    // current backend; share = solo cost / sum of solo costs.
    struct Solo
    {
        const char *name;
        bool enc, dedup, integ;
    };
    const Solo solos[] = {
        {"encryption", true, false, false},
        {"dedup", false, true, false},
        {"integrity", false, false, true},
    };
    double none_lps;
    {
        BmoConfig c;
        c.encryption = c.deduplication = c.integrity = false;
        none_lps = timeWrites<BmoBackendState>(c, seq);
    }
    double costs[3];
    double cost_sum = 0;
    for (unsigned i = 0; i < 3; ++i) {
        BmoConfig c;
        c.encryption = solos[i].enc;
        c.deduplication = solos[i].dedup;
        c.integrity = solos[i].integ;
        double lps = timeWrites<BmoBackendState>(c, seq);
        // Seconds-per-line attributable to the kernel itself.
        costs[i] = 1.0 / lps - 1.0 / none_lps;
        if (costs[i] < 0)
            costs[i] = 0;
        cost_sum += costs[i];
    }
    std::printf("\nper-kernel share of writeLine cost (fast path): ");
    for (unsigned i = 0; i < 3; ++i) {
        double share = cost_sum > 0 ? costs[i] / cost_sum : 0;
        std::printf("%s %.0f%%%s", solos[i].name, 100 * share,
                    i + 1 < 3 ? ", " : "\n");
        metrics.emplace_back(std::string("share_") + solos[i].name,
                             share);
        // Absolute per-line cost (ns) as well: shares hide a uniform
        // regression, the absolute numbers are the tracked signal.
        metrics.emplace_back(std::string("cost_") + solos[i].name +
                                 "_ns_per_line",
                             costs[i] * 1e9);
    }
    metrics.emplace_back("baseline_bookkeeping_lps", none_lps);

    writeSimpleJson(
        "perf_backend",
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count(),
        metrics);
    std::printf("\n[perf_backend: writeLine %.2fx vs seed kernels "
                "-> BENCH_perf_backend.json]\n",
                write_geomean);
    return write_geomean >= 1.0 ? 0 : 1;
}
