/**
 * @file
 * Section 5.2.7 reproduction: the hardware overhead of Janus — bits
 * per queue/buffer entry and the total storage, compared against
 * the paper's numbers (119 b/request entry, 103 b/operation entry,
 * 148 B/IRB entry, 9.25 KB total, 0.51% of the LLC).
 */

#include <chrono>
#include <cstdio>

#include "bench_common.hh"
#include "janus/janus_hw.hh"
#include "cpu/timing_core.hh"

int
main(int argc, char **argv)
{
    janus::bench::parseBenchFlags(argc, argv);
    using namespace janus;

    const auto wall_start = std::chrono::steady_clock::now();
    JanusHwConfig hw;
    CoreConfig core;

    // Field widths from the paper's Figure 7b/7c.
    const unsigned req_entry_bits =
        16 /*PRE_ID*/ + 16 /*ThreadID*/ + 16 /*TransactionID*/ +
        42 /*ProcAddr*/ + 64 /*Addr/value*/ + 32 /*Size*/ + 3 /*Func*/;
    const unsigned op_entry_bits =
        16 + 16 + 16 + 42 /*ProcAddr*/ + 8 /*patch meta*/ + 5;
    const unsigned irb_entry_bits =
        16 + 16 + 16 + 42 /*ProcAddr*/ + 512 /*Data*/ +
        576 /*IntermediateResults*/ + 1 /*Complete*/;

    auto kib = [](double bits) { return bits / 8.0 / 1024.0; };
    double total_kib =
        kib(static_cast<double>(hw.requestQueueEntries) *
            req_entry_bits) +
        kib(static_cast<double>(hw.opQueueEntries) * op_entry_bits) +
        kib(static_cast<double>(hw.irbEntries) * irb_entry_bits);

    std::printf("=== Section 5.2.7: Janus hardware overhead ===\n");
    std::printf("%-34s %4u entries x %3u b = %6.2f KiB\n",
                "Pre-execution Request Queue", hw.requestQueueEntries,
                req_entry_bits,
                kib(static_cast<double>(hw.requestQueueEntries) *
                    req_entry_bits));
    std::printf("%-34s %4u entries x %3u b = %6.2f KiB\n",
                "Pre-execution Operation Queue", hw.opQueueEntries,
                op_entry_bits,
                kib(static_cast<double>(hw.opQueueEntries) *
                    op_entry_bits));
    std::printf("%-34s %4u entries x %3u b = %6.2f KiB\n",
                "Intermediate Result Buffer", hw.irbEntries,
                irb_entry_bits,
                kib(static_cast<double>(hw.irbEntries) *
                    irb_entry_bits));
    std::printf("%-34s %29.2f KiB\n", "Total per core", total_kib);
    std::printf("%-34s %28.2f %%\n", "Fraction of the 2 MB L2/LLC",
                100.0 * total_kib * 1024 * 8 /
                    (static_cast<double>(core.l2Bytes) * 8));
    std::printf("\npaper: 9.25 KB total, 0.51%% of the LLC; 4-wide "
                "BMO logic ~300k gates (0.065 mm^2 at 14 nm).\n");
    janus::bench::writeSimpleJson(
        "table_overhead",
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count(),
        {{"total_kib_per_core", total_kib},
         {"llc_fraction_percent",
          100.0 * total_kib * 1024 * 8 /
              (static_cast<double>(core.l2Bytes) * 8)}});
    return 0;
}
