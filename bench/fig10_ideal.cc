/**
 * @file
 * Figure 10 reproduction: slowdown of the Serialized baseline and of
 * Janus relative to the ideal case where BMO latency is entirely off
 * the write critical path (writes still persist through the ADR
 * write queue, so device acceptance remains real), plus the fraction
 * of writes whose BMOs were completely pre-executed (the paper
 * reports 45.13% on average).
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    janus::bench::parseBenchFlags(argc, argv);
    using namespace janus;
    using namespace janus::bench;
    setQuiet(true);

    BenchRunner bench("fig10_ideal");
    struct Cell
    {
        std::size_t ideal, serial, janus;
    };
    std::vector<Cell> cells;
    for (const std::string &w : allWorkloadNames()) {
        RunSpec spec;
        spec.workload = w;
        spec.txnsPerCore = 250;

        RunSpec ideal_spec = spec;
        ideal_spec.mode = WritePathMode::NoBmo;
        Cell cell;
        cell.ideal = bench.add("ideal/" + w, ideal_spec);
        cell.serial = bench.add("serial/" + w, spec);
        spec.mode = WritePathMode::Janus;
        spec.instr = Instrumentation::Manual;
        cell.janus = bench.add("janus/" + w, spec);
        cells.push_back(cell);
    }
    bench.runAll();

    printHeader("Figure 10: slowdown over non-blocking writeback",
                {"serialized", "janus", "fullpre%"});
    std::vector<double> serial_col, janus_col, pre_col;
    std::size_t wi = 0;
    for (const std::string &w : allWorkloadNames()) {
        const ExperimentResult &ideal = bench.result(cells[wi].ideal);
        const ExperimentResult &serial =
            bench.result(cells[wi].serial);
        const ExperimentResult &janus_r =
            bench.result(cells[wi].janus);
        double s_slow = ratio(serial, ideal);
        double j_slow = ratio(janus_r, ideal);
        serial_col.push_back(s_slow);
        janus_col.push_back(j_slow);
        pre_col.push_back(janus_r.fullyPreExecutedFrac * 100);
        printRow(w, {s_slow, j_slow,
                     janus_r.fullyPreExecutedFrac * 100});
        ++wi;
    }
    printRow("geomean", {geomean(serial_col), geomean(janus_col),
                         geomean(pre_col)});

    std::printf("\npaper: serialized ~4.93x slower than the ideal, "
                "Janus recovers to ~2.09x; on average 45.13%% of\n"
                "       writes arrive with fully pre-executed "
                "BMOs.\n");
    bench.writeJson();
    return 0;
}
