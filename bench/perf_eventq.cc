/**
 * @file
 * Event-kernel microbenchmark: raw events/sec of the current
 * EventQueue (SBO callbacks + calendar ring / far heap) against a
 * faithful replica of the seed kernel (type-erased std::function in
 * a std::priority_queue). Both kernels run identical scheduling
 * patterns modeled on what the simulator actually produces:
 *
 *  - near_churn:   per-core batch reschedules at ns..100ns deltas
 *  - same_tick:    fan-out bursts landing on one tick (FIFO path)
 *  - far_horizon:  us-scale deltas that bypass the calendar ring
 *  - deep_pending: thousands of outstanding events at once
 *
 * Writes BENCH_perf_eventq.json with per-scenario events/sec and
 * the overall speedup (the PR's >= 2x acceptance gate).
 */

#include <chrono>
#include <cstdio>
#include <functional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "common/random.hh"
#include "sim/eventq.hh"

namespace
{

using namespace janus;

/** The seed event kernel, verbatim, for before/after comparison. */
class LegacyEventQueue
{
  public:
    Tick curTick() const { return curTick_; }

    void
    schedule(Tick when, std::function<void()> fn)
    {
        events_.push(Event{when, nextSeq_++, std::move(fn)});
    }

    void
    scheduleIn(Tick delay, std::function<void()> fn)
    {
        schedule(curTick_ + delay, std::move(fn));
    }

    std::uint64_t
    run(Tick limit = maxTick)
    {
        std::uint64_t count = 0;
        while (!events_.empty() && events_.top().when <= limit) {
            Event ev = std::move(const_cast<Event &>(events_.top()));
            events_.pop();
            curTick_ = ev.when;
            ++count;
            ev.fn();
        }
        return count;
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
};

/**
 * A self-rescheduling actor: the closure captures one pointer, like
 * the simulator's `[this] { step(); }` core events.
 */
template <typename Q>
struct Actor
{
    Q *eq = nullptr;
    std::uint64_t *done = nullptr;
    std::uint64_t budget = 0;
    Tick delta = 0;

    void
    tick()
    {
        ++*done;
        if (budget-- > 0)
            eq->scheduleIn(delta, [this] { tick(); });
    }
};

template <typename Q>
std::uint64_t
nearChurn(std::uint64_t events_per_actor)
{
    Q eq;
    std::uint64_t done = 0;
    const Tick deltas[] = {250,   1000,  4000,  15000,
                           40000, 64000, 90000, 128000};
    std::vector<Actor<Q>> actors(8);
    for (unsigned i = 0; i < actors.size(); ++i) {
        actors[i] = {&eq, &done, events_per_actor, deltas[i]};
        Actor<Q> *a = &actors[i];
        eq.scheduleIn(deltas[i], [a] { a->tick(); });
    }
    eq.run();
    return done;
}

template <typename Q>
std::uint64_t
sameTickFanout(std::uint64_t batches)
{
    Q eq;
    std::uint64_t done = 0;
    std::uint64_t remaining = batches;
    // One driver per batch: 31 same-tick leaves + itself.
    std::function<void()> driver = [&] {
        for (int i = 0; i < 31; ++i)
            eq.scheduleIn(100, [&done] { ++done; });
        ++done;
        if (--remaining > 0)
            eq.scheduleIn(100, driver);
    };
    eq.scheduleIn(100, driver);
    eq.run();
    return done;
}

template <typename Q>
std::uint64_t
farHorizon(std::uint64_t events_per_actor)
{
    Q eq;
    std::uint64_t done = 0;
    // us-scale deltas: all spill past the calendar window.
    const Tick deltas[] = {5 * ticks::us, 8 * ticks::us,
                           13 * ticks::us, 21 * ticks::us};
    std::vector<Actor<Q>> actors(4);
    for (unsigned i = 0; i < actors.size(); ++i) {
        actors[i] = {&eq, &done, events_per_actor, deltas[i]};
        Actor<Q> *a = &actors[i];
        eq.scheduleIn(deltas[i], [a] { a->tick(); });
    }
    eq.run();
    return done;
}

template <typename Q>
std::uint64_t
deepPending(std::uint64_t rounds)
{
    Q eq;
    std::uint64_t done = 0;
    Rng rng(42);
    for (std::uint64_t r = 0; r < rounds; ++r) {
        // 4096 outstanding one-shot events at scattered near ticks.
        Tick base = eq.curTick();
        for (unsigned i = 0; i < 4096; ++i)
            eq.schedule(base + rng.range(1, 2 * ticks::us),
                        [&done] { ++done; });
        eq.run();
    }
    return done;
}

struct Scenario
{
    const char *name;
    std::uint64_t (*legacy)(std::uint64_t);
    std::uint64_t (*current)(std::uint64_t);
    std::uint64_t arg;
};

double
eventsPerSec(std::uint64_t (*fn)(std::uint64_t), std::uint64_t arg,
             std::uint64_t *events_out)
{
    // Warm up, then take the best of 3 to cut scheduler noise.
    fn(arg / 8 ? arg / 8 : 1);
    double best = 0;
    std::uint64_t events = 0;
    for (int rep = 0; rep < 3; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        events = fn(arg);
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        double eps = static_cast<double>(events) / secs;
        if (eps > best)
            best = eps;
    }
    *events_out = events;
    return best;
}

} // namespace

int
main()
{
    using janus::bench::geomean;
    using janus::bench::writeSimpleJson;

    const auto wall_start = std::chrono::steady_clock::now();
    const Scenario scenarios[] = {
        {"near_churn", &nearChurn<LegacyEventQueue>,
         &nearChurn<EventQueue>, 250000},
        {"same_tick", &sameTickFanout<LegacyEventQueue>,
         &sameTickFanout<EventQueue>, 60000},
        {"far_horizon", &farHorizon<LegacyEventQueue>,
         &farHorizon<EventQueue>, 400000},
        {"deep_pending", &deepPending<LegacyEventQueue>,
         &deepPending<EventQueue>, 400},
    };

    std::printf("=== perf_eventq: kernel events/sec, seed "
                "(std::function + priority_queue) vs current ===\n");
    std::printf("%-14s %14s %14s %9s\n", "scenario", "seed (M/s)",
                "current (M/s)", "speedup");

    std::vector<std::pair<std::string, double>> metrics;
    std::vector<double> speedups;
    for (const Scenario &s : scenarios) {
        std::uint64_t ev_legacy = 0, ev_current = 0;
        double legacy = eventsPerSec(s.legacy, s.arg, &ev_legacy);
        double current = eventsPerSec(s.current, s.arg, &ev_current);
        if (ev_legacy != ev_current) {
            std::fprintf(stderr,
                         "%s: event count mismatch %llu vs %llu\n",
                         s.name,
                         static_cast<unsigned long long>(ev_legacy),
                         static_cast<unsigned long long>(
                             ev_current));
            return 1;
        }
        double speedup = current / legacy;
        speedups.push_back(speedup);
        std::printf("%-14s %14.2f %14.2f %8.2fx\n", s.name,
                    legacy / 1e6, current / 1e6, speedup);
        metrics.emplace_back(std::string(s.name) + "_seed_eps",
                             legacy);
        metrics.emplace_back(std::string(s.name) + "_current_eps",
                             current);
        metrics.emplace_back(std::string(s.name) + "_speedup",
                             speedup);
    }
    double overall = geomean(speedups);
    std::printf("%-14s %14s %14s %8.2fx\n", "geomean", "", "",
                overall);
    metrics.emplace_back("geomean_speedup", overall);

    writeSimpleJson(
        "perf_eventq",
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count(),
        metrics);
    std::printf("\n[perf_eventq: overall %.2fx events/sec vs seed "
                "kernel -> BENCH_perf_eventq.json]\n",
                overall);
    return overall >= 1.0 ? 0 : 1;
}
