/**
 * @file
 * Quickstart: the smallest end-to-end Janus program.
 *
 * We write a tiny crash-consistent transaction in PmIR — back up a
 * record, update it in place, commit — instrument it with the Janus
 * software interface (paper Table 2), and run it on the simulated
 * NVM system in three configurations: serialized BMOs, parallelized
 * BMOs, and Janus pre-execution. The program prints the critical
 * write latency and end-to-end time of each.
 *
 * Build & run:   ./build/examples/quickstart
 */

#include <cstdio>

#include "common/logging.hh"
#include "harness/system.hh"
#include "ir/builder.hh"
#include "txn/undo_log.hh"

using namespace janus;

namespace
{

/**
 * update_record(ctx, record, src): undo-log a 64-byte record, then
 * durably overwrite it — the paper's Figure 4 skeleton. The manual
 * flavor pre-executes the update and the commit.
 */
Module
buildProgram(bool manual)
{
    Module module;
    buildTxnLibrary(module); // undo_append + tx_finish
    IrBuilder b(module);
    b.beginFunction("update_record", 3);
    int ctx_reg = b.arg(0);
    int record = b.arg(1);
    int src = b.arg(2);
    b.txBegin();
    if (manual) {
        // Address and data are known at entry: pre-execute the
        // in-place update before the backup step even starts.
        int p = b.preInit();
        b.preBoth(p, record, src, lineBytes);
    }
    b.call("undo_append", {ctx_reg, record, b.constI(lineBytes)});
    if (manual)
        emitCommitPre(b, ctx_reg); // pre-execute the commit too
    b.sfence();                    // backup is durable
    b.memCpy(record, src, lineBytes); // in-place update
    b.clwb(record, lineBytes);
    b.sfence();                    // update is durable
    b.call("tx_finish", {ctx_reg}); // commit
    b.txEnd();
    b.ret();
    b.endFunction();
    verify(module);
    return module;
}

Tick
runMode(WritePathMode mode, bool manual, double *write_ns)
{
    Module module = buildProgram(manual);
    SystemConfig config;
    config.mode = mode;
    NvmSystem system(config, module);

    // Carve out a context, a log and one record; stage the payload.
    RegionAllocator &alloc = system.allocator();
    Addr ctx_addr = alloc.alloc(ctx::size);
    Addr log = alloc.alloc(logRegionBytes);
    Addr record = alloc.alloc(lineBytes);
    Addr payload = alloc.alloc(lineBytes);
    system.mem().writeWord(ctx_addr + ctx::logBase, log);
    system.mem().writeLine(record, CacheLine::fromSeed(1));

    unsigned remaining = 100;
    std::vector<TxnSource> sources;
    sources.push_back([&](std::string &fn,
                          std::vector<std::uint64_t> &args) {
        if (remaining == 0)
            return false;
        system.mem().writeLine(payload,
                               CacheLine::fromSeed(1000 + remaining));
        --remaining;
        fn = "update_record";
        args = {ctx_addr, record, payload};
        return true;
    });
    Tick makespan = system.run(std::move(sources));
    *write_ns = system.mc().avgWriteLatencyNs();

    // The record really is what we last wrote — through encryption,
    // dedup and the Merkle tree.
    ReadOutcome out = system.mc().backend().readLine(record);
    janus_assert(out.data == CacheLine::fromSeed(1001) && out.macOk &&
                     out.treeOk,
                 "record round-trip failed");
    return makespan;
}

} // namespace

int
main()
{
    std::printf("Janus quickstart: 100 undo-log transactions, one "
                "64 B record update each\n\n");
    double wlat;
    Tick serial = runMode(WritePathMode::Serialized, false, &wlat);
    std::printf("%-28s %8.1f us   avg write latency %6.0f ns\n",
                "serialized BMOs", serial / 1e6, wlat);
    Tick parallel = runMode(WritePathMode::Parallel, false, &wlat);
    std::printf("%-28s %8.1f us   avg write latency %6.0f ns\n",
                "parallelized BMOs", parallel / 1e6, wlat);
    Tick janus = runMode(WritePathMode::Janus, true, &wlat);
    std::printf("%-28s %8.1f us   avg write latency %6.0f ns\n",
                "Janus (pre-executed)", janus / 1e6, wlat);
    std::printf("\nspeedup: parallelization %.2fx, Janus %.2fx\n",
                static_cast<double>(serial) / parallel,
                static_cast<double>(serial) / janus);
    return 0;
}
