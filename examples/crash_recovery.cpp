/**
 * @file
 * Crash recovery, end to end: run durable TPC-C New-Order
 * transactions with the persist journal enabled, "pull the plug" at
 * an arbitrary durable-write boundary, reconstruct the NVM image,
 * run undo-log recovery, and verify the database — plus a tour of
 * the secure backend (encryption round-trip, dedup accounting,
 * Merkle audit and tamper detection).
 *
 * Build & run:   ./build/examples/crash_recovery
 */

#include <cstdio>

#include "harness/system.hh"
#include "txn/undo_log.hh"
#include "workloads/workload.hh"

using namespace janus;

int
main()
{
    WorkloadParams params;
    params.txnsPerCore = 50;
    auto workload = makeWorkload("tpcc", params);

    Module module;
    buildTxnLibrary(module);
    workload->buildKernels(module, true);

    SystemConfig config;
    config.mode = WritePathMode::Janus;
    NvmSystem system(config, module);
    system.mc().enableJournal();
    workload->setupCore(0, system);

    SparseMemory initial;
    initial.copyFrom(system.mem());

    std::vector<TxnSource> sources;
    sources.push_back(workload->source(0, system));
    Tick makespan = system.run(std::move(sources));
    const auto &journal = system.mc().journal();
    std::printf("ran %u New-Order transactions in %.1f us; %zu "
                "durable line writes journaled\n\n",
                params.txnsPerCore, makespan / 1e6, journal.size());

    // Crash two thirds of the way through the durable write stream.
    std::size_t cut = journal.size() * 2 / 3;
    SparseMemory image;
    image.copyFrom(initial);
    for (std::size_t i = 0; i < cut; ++i)
        image.writeLine(journal[i].lineAddr, journal[i].data);
    std::printf("simulated power failure after durable write %zu "
                "(tick %.1f us)\n",
                cut, journal[cut - 1].persisted / 1e6);

    Addr heap = system.mem().readWord(workload->ctxAddr(0) +
                                      ctx::heap);
    unsigned rolled = recoverUndoLog(image, workload->logBase(0));
    std::printf("recovery rolled back %u undo entries; district "
                "next_o_id = %llu of %u orders survive\n",
                rolled,
                static_cast<unsigned long long>(
                    image.readWord(heap)),
                params.txnsPerCore);
    workload->validateRecovered(image, 0);
    std::printf("recovered image passed all consistency checks "
                "(order prefix intact, nothing torn)\n\n");

    // The secure-memory backend under the same system.
    BmoBackendState &backend = system.mc().backend();
    std::printf("backend: %llu line writes, %.0f%% deduplicated, "
                "%llu live physical lines\n",
                static_cast<unsigned long long>(backend.writes()),
                100 * backend.dupRatio(),
                static_cast<unsigned long long>(
                    backend.physLinesLive()));
    std::printf("Merkle root audit (recompute from all leaves): %s\n",
                backend.auditIntegrity() ? "PASS" : "FAIL");

    backend.corruptStoredLine(heap); // the district line
    ReadOutcome out = backend.readLine(heap);
    std::printf("after flipping one stored ciphertext byte: MAC "
                "check %s (tamper detected)\n",
                out.macOk ? "PASSED (?!)" : "FAILED as expected");
    return 0;
}
