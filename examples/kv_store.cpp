/**
 * @file
 * A persistent key-value store on the simulated secure NVM system —
 * the motivating scenario of the paper's introduction. Uses the
 * Hash Table workload (chained buckets, undo-logged in-place
 * updates) and compares the four write-path designs, then inspects
 * what the backend actually stored: dedup savings, encryption
 * round-trips, Merkle integrity.
 *
 * Build & run:   ./build/examples/kv_store
 */

#include <cstdio>

#include "harness/experiment.hh"

using namespace janus;

int
main()
{
    std::printf("Persistent KV store: 500 updates, 64 B values, "
                "0.5 duplicate ratio\n\n");

    ExperimentConfig config;
    config.workloadName = "hash_table";
    config.workload.txnsPerCore = 500;
    config.workload.dupRatio = 0.5;

    struct ModeRow
    {
        const char *name;
        WritePathMode mode;
        Instrumentation instr;
    } rows[] = {
        {"no BMOs (insecure)", WritePathMode::NoBmo,
         Instrumentation::None},
        {"serialized BMOs", WritePathMode::Serialized,
         Instrumentation::None},
        {"parallelized BMOs", WritePathMode::Parallel,
         Instrumentation::None},
        {"Janus (manual PRE)", WritePathMode::Janus,
         Instrumentation::Manual},
        {"Janus (compiler pass)", WritePathMode::Janus,
         Instrumentation::Auto},
    };

    Tick serial_makespan = 0;
    std::printf("%-24s %10s %12s %10s %10s\n", "design", "time(us)",
                "write(ns)", "dup%", "fullpre%");
    for (const ModeRow &row : rows) {
        config.sys.mode = row.mode;
        config.instr = row.instr;
        ExperimentResult r = runExperiment(config);
        if (row.mode == WritePathMode::Serialized)
            serial_makespan = r.makespan;
        std::printf("%-24s %10.1f %12.0f %9.0f%% %9.0f%%\n",
                    row.name, r.makespan / 1e6, r.avgWriteLatencyNs,
                    100 * r.measuredDupRatio,
                    100 * r.fullyPreExecutedFrac);
        if (row.mode == WritePathMode::Janus &&
            row.instr == Instrumentation::Manual && serial_makespan)
            std::printf("%56s speedup over serialized: %.2fx\n", "",
                        static_cast<double>(serial_makespan) /
                            r.makespan);
    }

    std::printf("\nEvery run validates the full table against a "
                "native mirror (keys, chains, values), and every\n"
                "value round-trips through AES counter-mode "
                "encryption, MD5 deduplication with reference\n"
                "counting, and a 9-level Bonsai Merkle tree.\n");
    return 0;
}
