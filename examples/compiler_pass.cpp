/**
 * @file
 * The automated instrumentation pass, visibly: disassemble a
 * transaction kernel before and after the Section 4.5 compiler pass
 * injects PRE_* calls, print the pass's report for every Table 4
 * workload, and show the resulting speedups.
 *
 * Build & run:   ./build/examples/compiler_pass
 */

#include <cstdio>

#include "compiler/auto_instrument.hh"
#include "compiler/misuse_check.hh"
#include "harness/experiment.hh"
#include "ir/builder.hh"
#include "txn/undo_log.hh"

using namespace janus;

namespace
{

/** The paper's Figure 4 kernel, uninstrumented. */
Module
figure4Kernel()
{
    Module module;
    buildTxnLibrary(module);
    IrBuilder b(module);
    b.beginFunction("array_update", 3); // (ctx, index, src)
    int ctx_reg = b.arg(0);
    int index = b.arg(1);
    int src = b.arg(2);
    b.txBegin();
    int heap = b.load(ctx_reg, ctx::heap);
    int addr = b.add(heap, b.mulI(index, lineBytes));
    b.call("undo_append", {ctx_reg, addr, b.constI(lineBytes)});
    b.sfence();
    b.memCpy(addr, src, lineBytes); // in-place update
    b.clwb(addr, lineBytes);
    b.sfence();
    b.call("tx_finish", {ctx_reg});
    b.txEnd();
    b.ret();
    b.endFunction();
    verify(module);
    return module;
}

} // namespace

int
main()
{
    Module module = figure4Kernel();
    std::printf("=== before the pass "
                "===============================\n%s\n",
                toString(module.fn("array_update")).c_str());

    InstrumentReport report = autoInstrument(module);
    std::printf("=== after the pass "
                "================================\n%s\n",
                toString(module.fn("array_update")).c_str());
    std::printf("pass report: %s\n\n", report.toString().c_str());

    std::printf("=== pass reports and speedups per workload "
                "========\n");
    std::printf("%-12s %8s %8s   %s\n", "workload", "manual", "auto",
                "report");
    for (const std::string &w : allWorkloadNames()) {
        ExperimentConfig config;
        config.workloadName = w;
        config.workload.txnsPerCore = 150;
        config.sys.mode = WritePathMode::Serialized;
        config.instr = Instrumentation::None;
        ExperimentResult serial = runExperiment(config);
        config.sys.mode = WritePathMode::Janus;
        config.instr = Instrumentation::Manual;
        ExperimentResult manual = runExperiment(config);
        config.instr = Instrumentation::Auto;
        ExperimentResult automatic = runExperiment(config);
        std::printf("%-12s %7.2fx %7.2fx   %s\n", w.c_str(),
                    static_cast<double>(serial.makespan) /
                        manual.makespan,
                    static_cast<double>(serial.makespan) /
                        automatic.makespan,
                    automatic.instrReport.toString().c_str());
    }
    std::printf("\nQueue and RB-Tree persist inside loops and chase "
                "pointers, which the static pass skips\n"
                "(Section 4.5.2) — exactly the paper's Figure 11 "
                "story.\n");

    // The Section 6 misuse linter on a deliberately sloppy kernel.
    std::printf("\n=== misuse linter (Section 6 tooling) "
                "=============\n");
    Module sloppy;
    IrBuilder b(sloppy);
    b.beginFunction("sloppy", 2);
    int p1 = b.preInit();
    b.preBothVal(p1, b.arg(0), b.arg(1)); // too close to the write
    b.store(b.arg(0), b.arg(1), 0);
    b.store(b.arg(0), b.arg(1), 8); // second update: stale snapshot
    b.clwb(b.arg(0), 16);
    b.sfence();
    int p2 = b.preInit();
    b.preAddr(p2, b.arg(1), 64); // never written back
    b.ret();
    b.endFunction();
    verify(sloppy);
    std::printf("%s", toString(checkMisuse(sloppy)).c_str());
    return 0;
}
